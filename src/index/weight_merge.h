// Global weight adjustment (Section 6, Eq. 6): a γ learned in several
// parts gets the support-weighted average
//     w(γ) = Σ_i n_i·w_i / Σ_i n_i
// of its per-part weights, so evidence from one part backs up γs that are
// under-supported in another. Backs both the distributed driver's global
// merge and the CleanModel weight store (it depends only on the index
// layer, which is why it lives here rather than under distributed/).
//
// γ identity is (rule, reason values, result values). Values are interned
// into table-owned per-attribute ValueDicts — independent of any dataset's
// dictionaries, so accumulating indexes built over different datasets (or
// the same data interned in a different order) always agrees on γ ids.
// Keys are packed id tuples, which is also what makes the store
// serializable with stable ids: a snapshot persists the dictionaries and
// the id-keyed entries verbatim (see cleaning/model_io.h).

#ifndef MLNCLEAN_INDEX_WEIGHT_MERGE_H_
#define MLNCLEAN_INDEX_WEIGHT_MERGE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dataset/value_dict.h"
#include "index/mln_index.h"

namespace mlnclean {

/// Accumulates per-part learned weights keyed by γ identity
/// (rule, reason values, result values) and hands back the Eq. 6 average.
/// `rules` must be the rule set the indexes were built over; it maps every
/// value position of a γ to its schema attribute.
class GlobalWeightTable {
 public:
  /// Staleness control for long-lived stores serving drifting streams
  /// (CleaningOptions::weight_half_life_batches): with a half-life H > 0,
  /// every Accumulate counts as one contributed batch and an entry's
  /// previously stored mass (Σ n_i w_i and Σ n_i alike) decays by
  /// 2^(-Δ/H) for the Δ batches since it last received support — so the
  /// Eq. 6 average tracks recent evidence geometrically instead of
  /// pinning to all-history means. 0 (default) disables decay; reads
  /// (Apply/Lookup) are unaffected either way, they always return
  /// weighted_sum / support. Set before the first Accumulate.
  void set_half_life_batches(size_t batches) { half_life_ = batches; }
  size_t half_life_batches() const { return half_life_; }

  /// Contributed batches so far (Accumulate calls; snapshot state).
  uint64_t batches() const { return batches_; }

  /// Folds in one part's post-learning index (call after weight learning,
  /// before RSC). The only member that interns new values: callers that
  /// share a table across threads may run Apply/Lookup concurrently with
  /// each other, but never with Accumulate.
  void Accumulate(const MlnIndex& part_index, const RuleSet& rules);

  /// Overwrites every γ weight in `part_index` with its merged global
  /// weight. γs never seen by Accumulate keep their local weight.
  /// Read-only on the table (values are looked up, never interned).
  void Apply(MlnIndex* part_index, const RuleSet& rules) const;

  /// Merged weight of a γ, or NotFound. Read-only.
  Result<double> Lookup(const RuleSet& rules, size_t rule_index,
                        const std::vector<Value>& reason,
                        const std::vector<Value>& result) const;

  size_t size() const { return table_.size(); }

  // ---- snapshot surface (cleaning/model_io) ------------------------------

  /// One entry, unpacked. reason_ids/result_ids index the per-attribute
  /// dictionaries below through the rule's reason/result attribute lists.
  struct EntryView {
    size_t rule_index;
    std::vector<ValueId> reason_ids;
    std::vector<ValueId> result_ids;
    double weighted_sum;  // Σ n_i w_i (decayed when a half-life is set)
    double support;       // Σ n_i (ditto)
    /// Batch counter value when the entry last received support; the
    /// decay state a snapshot must carry for lazy aging to resume.
    uint64_t last_batch = 0;
  };

  /// Per-attribute interners backing the γ keys (empty until the first
  /// Accumulate or RestoreDicts; sized to the rule schema afterwards).
  size_t num_attr_dicts() const { return dicts_.size(); }
  const ValueDict& attr_dict(size_t attr) const { return dicts_[attr]; }

  /// Visits every entry in deterministic (byte-sorted key) order, so two
  /// saves of the same table produce identical bytes.
  void ForEachEntrySorted(const std::function<void(const EntryView&)>& fn) const;

  /// Snapshot decode: installs the interners rebuilt from a snapshot.
  /// Replaces any existing dictionaries; call before RestoreEntry.
  void RestoreDicts(std::vector<ValueDict> dicts);

  /// Snapshot decode: re-inserts one entry. Bounds-checked against `rules`
  /// and the restored dictionaries (arity must match the rule, every id
  /// must exist in its attribute's dictionary); Invalid otherwise.
  Status RestoreEntry(const RuleSet& rules, const EntryView& entry);

  /// Snapshot decode: restores the contributed-batch counter.
  void RestoreBatches(uint64_t batches) { batches_ = batches; }

 private:
  struct Entry {
    double weighted_sum = 0.0;  // Σ n_i w_i
    double support = 0.0;       // Σ n_i
    uint64_t last_batch = 0;    // batches_ when last accumulated into
  };

  // Packed key: u32 rule_index, u32 reason arity, then the reason ids
  // followed by the result ids, 4 raw bytes each. The arity prefix keeps
  // keys self-describing (ForEachEntrySorted unpacks without the rules).
  static std::string PackKey(size_t rule_index, const std::vector<ValueId>& reason_ids,
                             const std::vector<ValueId>& result_ids);

  /// Resolves a γ's values to table ids, interning unseen values
  /// (Accumulate's write path).
  bool InternIds(const Constraint& rule, const std::vector<Value>& reason,
                 const std::vector<Value>& result, std::vector<ValueId>* reason_ids,
                 std::vector<ValueId>* result_ids);
  /// Read-only resolution; false when any value was never interned.
  bool FindIds(const Constraint& rule, const std::vector<Value>& reason,
               const std::vector<Value>& result, std::vector<ValueId>* reason_ids,
               std::vector<ValueId>* result_ids) const;

  std::vector<ValueDict> dicts_;  // one per schema attribute
  std::unordered_map<std::string, Entry> table_;
  size_t half_life_ = 0;   // 0 = no decay
  uint64_t batches_ = 0;   // Accumulate calls (the decay clock)
};

}  // namespace mlnclean

#endif  // MLNCLEAN_INDEX_WEIGHT_MERGE_H_
