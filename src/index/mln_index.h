// The MLN index (Section 4, Figure 2): a two-layer hash table. The first
// layer has one Block per MLN rule; the second layer divides each block
// into Groups of γs sharing the same reason-part values. Cleaning within a
// block never consults data outside it, which is what shrinks the search
// space of the two-stage cleaner.

#ifndef MLNCLEAN_INDEX_MLN_INDEX_H_
#define MLNCLEAN_INDEX_MLN_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "index/piece.h"
#include "mln/weight_learner.h"
#include "rules/constraint.h"

namespace mlnclean {

/// Second-layer entry: γs sharing one reason key. After AGP a group may
/// additionally hold γs merged in from abnormal groups (whose own reason
/// values may differ from the key); after RSC it holds exactly one γ.
struct Group {
  /// The shared reason-part values that keyed this group at build time.
  std::vector<Value> key;
  std::vector<Piece> pieces;

  /// Total number of tuples across all γs (the AGP size criterion).
  size_t TupleCount() const;

  /// γ*: the piece related to the most tuples (ties: first built).
  const Piece& Star() const;
  Piece& Star();
};

/// First-layer entry: all groups of one rule.
struct Block {
  size_t rule_index = 0;
  std::vector<Group> groups;

  /// Sum of γ supports in the whole block (the Eq. 4 denominator).
  size_t TupleCount() const;
  /// Number of distinct γs in the block (the M of Eq. 4).
  size_t PieceCount() const;
};

/// The two-layer index over a dataset and rule set.
class MlnIndex {
 public:
  /// Builds the index: one block per rule, groups keyed by reason values
  /// (lines 1-13 of Algorithm 1). Fails on rules the index cannot host
  /// (general DCs). Rules ground in parallel on `ctx`'s executor; the
  /// result is identical for any executor or worker cap. One progress
  /// unit is ticked per grounded rule. When `ctx` is stopped (cancelled
  /// or past its deadline), rules not yet grounded are skipped and Build
  /// returns Status::Cancelled instead of a half-built index.
  static Result<MlnIndex> Build(const Dataset& data, const RuleSet& rules,
                                const ExecContext& ctx = {});

  /// Extends a freshly built (pre-AGP) index in place with the grounding
  /// of rows [first_row, data.num_rows()) — the incremental-append path.
  /// Only the new rows are re-ground, and only groups whose reason
  /// bindings gained members are touched: an existing γ gains tuple ids,
  /// a new (reason, result) binding becomes a new γ at the end of its
  /// group, and a new reason key becomes a new group at the end of the
  /// block — exactly the first-appearance positions a cold Build over the
  /// whole dataset would produce, so the appended index is bit-identical
  /// to that cold build. `data` must be the same dataset the index was
  /// built over plus the appended rows (same dictionaries; Append only
  /// grows them, so existing ids are stable). Weights of touched γs are
  /// stale after an append; callers re-run the learn stage downstream.
  /// When `ctx` is stopped mid-append the index is left partially
  /// appended — callers must treat it as unusable (sessions go terminal).
  Status AppendRows(const Dataset& data, const RuleSet& rules,
                    size_t first_row, const ExecContext& ctx = {});

  /// Checks that this index is a plausible pre-AGP index over `data` and
  /// `rules`: block/rule alignment, per-γ value arity, id/value agreement
  /// with the dataset's dictionaries, and in-bounds strictly increasing
  /// tuple lists. The cross-process resume path runs this on a
  /// snapshot-loaded index before serving from it.
  Status Validate(const Dataset& data, const RuleSet& rules) const;

  /// Reassembles an index from externally decoded blocks (the snapshot
  /// loader) and rebuilds the per-block group maps.
  static MlnIndex FromBlocks(std::vector<Block> blocks);

  size_t num_blocks() const { return blocks_.size(); }
  const Block& block(size_t i) const { return blocks_[i]; }
  Block& block(size_t i) { return blocks_[i]; }
  const std::vector<Block>& blocks() const { return blocks_; }
  std::vector<Block>& blocks() { return blocks_; }

  /// Looks up the group with the given reason key; NotFound if absent or
  /// merged away.
  Result<size_t> FindGroup(size_t block_index, const std::vector<Value>& key) const;

  /// Learns MLN weights for every γ of every block: Eq. 4 priors refined
  /// by diagonal Newton over the current (post-AGP) grouping. Blocks are
  /// learned in parallel on `ctx`'s executor (deterministic: each block's
  /// problem is independent and computed identically); one progress unit
  /// per block. When `ctx` is stopped, blocks not yet learned are skipped
  /// (cooperative cancellation; the caller reports the terminal Status).
  void LearnWeights(const WeightLearnerOptions& options = {},
                    const ExecContext& ctx = {});

  /// Learns weights for a single block.
  static void LearnBlockWeights(Block* block, const WeightLearnerOptions& options = {});

  /// Sets every γ weight to its Eq. 4 prior (no Newton refinement); the
  /// ablation counterpart of LearnWeights.
  void AssignPriorWeights();

  /// Rebuilds the key -> group map of a block after external mutation
  /// (AGP merges groups in place).
  void ReindexBlock(size_t block_index);

  /// Hash key for a reason-value vector (exposed for reuse by cleaners).
  static std::string KeyOf(const std::vector<Value>& values);

 private:
  std::vector<Block> blocks_;
  // Per block: reason key -> index into block.groups.
  std::vector<std::unordered_map<std::string, size_t>> group_maps_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_INDEX_MLN_INDEX_H_
