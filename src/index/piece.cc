#include "index/piece.h"

#include <algorithm>

namespace mlnclean {

std::vector<Value> Piece::AllValues() const {
  std::vector<Value> out = reason;
  out.insert(out.end(), result.begin(), result.end());
  return out;
}

std::string Piece::ToString(const Schema& schema,
                            const std::vector<AttrId>& reason_attrs,
                            const std::vector<AttrId>& result_attrs) const {
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::vector<AttrId>& attrs, const std::vector<Value>& vals) {
    for (size_t i = 0; i < attrs.size() && i < vals.size(); ++i) {
      if (!first) out += ", ";
      first = false;
      out += schema.name(attrs[i]) + ": " + vals[i];
    }
  };
  append(reason_attrs, reason);
  append(result_attrs, result);
  out += "}";
  return out;
}

double PieceDistance(const Piece& a, const Piece& b, const DistanceFn& dist) {
  double total = 0.0;
  for (size_t i = 0; i < a.reason.size() && i < b.reason.size(); ++i) {
    total += dist(a.reason[i], b.reason[i]);
  }
  for (size_t i = 0; i < a.result.size() && i < b.result.size(); ++i) {
    total += dist(a.result[i], b.result[i]);
  }
  return total;
}

void InternPieceValues(const Piece& piece, DistanceCache* cache,
                       std::vector<ValueId>* out) {
  out->clear();
  for (const auto& v : piece.reason) out->push_back(cache->Intern(v));
  for (const auto& v : piece.result) out->push_back(cache->Intern(v));
}

double CachedPieceDistance(const std::vector<ValueId>& a,
                           const std::vector<ValueId>& b, DistanceCache* cache) {
  double total = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) total += cache->Distance(a[i], b[i]);
  return total;
}

double PieceDistanceBounded(const Piece& a, const Piece& b, const DistanceFn& dist,
                            double bound) {
  double total = 0.0;
  for (size_t i = 0; i < a.reason.size() && i < b.reason.size(); ++i) {
    total += dist(a.reason[i], b.reason[i]);
    if (total >= bound) return total;
  }
  for (size_t i = 0; i < a.result.size() && i < b.result.size(); ++i) {
    total += dist(a.result[i], b.result[i]);
    if (total >= bound) return total;
  }
  return total;
}

double CachedPieceDistanceBounded(const std::vector<ValueId>& a,
                                  const std::vector<ValueId>& b,
                                  DistanceCache* cache, double bound) {
  double total = 0.0;
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    total += cache->Distance(a[i], b[i]);
    if (total >= bound) return total;
  }
  return total;
}

}  // namespace mlnclean
