#include "index/piece.h"

#include <algorithm>

namespace mlnclean {

std::vector<Value> Piece::AllValues() const {
  std::vector<Value> out = reason;
  out.insert(out.end(), result.begin(), result.end());
  return out;
}

std::string Piece::ToString(const Schema& schema,
                            const std::vector<AttrId>& reason_attrs,
                            const std::vector<AttrId>& result_attrs) const {
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::vector<AttrId>& attrs, const std::vector<Value>& vals) {
    for (size_t i = 0; i < attrs.size() && i < vals.size(); ++i) {
      if (!first) out += ", ";
      first = false;
      out += schema.name(attrs[i]) + ": " + vals[i];
    }
  };
  append(reason_attrs, reason);
  append(result_attrs, result);
  out += "}";
  return out;
}

namespace {

// Attribute-wise accumulation shared by the four distance entry points.
// `use_ids` callers guarantee both γs carry complete id mirrors.
template <bool kUseIds, bool kBounded>
double Accumulate(const Piece& a, const Piece& b, const DistanceFn& dist,
                  double bound) {
  double total = 0.0;
  const size_t nr = std::min(a.reason.size(), b.reason.size());
  for (size_t i = 0; i < nr; ++i) {
    if (kUseIds) {
      if (a.reason_ids[i] == b.reason_ids[i]) continue;
    }
    total += dist(a.reason[i], b.reason[i]);
    if (kBounded && total >= bound) return total;
  }
  const size_t ns = std::min(a.result.size(), b.result.size());
  for (size_t i = 0; i < ns; ++i) {
    if (kUseIds) {
      if (a.result_ids[i] == b.result_ids[i]) continue;
    }
    total += dist(a.result[i], b.result[i]);
    if (kBounded && total >= bound) return total;
  }
  return total;
}

}  // namespace

double PieceDistance(const Piece& a, const Piece& b, const DistanceFn& dist) {
  if (a.has_ids() && b.has_ids()) {
    return Accumulate<true, false>(a, b, dist, 0.0);
  }
  return Accumulate<false, false>(a, b, dist, 0.0);
}

double PieceDistanceBounded(const Piece& a, const Piece& b, const DistanceFn& dist,
                            double bound) {
  if (a.has_ids() && b.has_ids()) {
    return Accumulate<true, true>(a, b, dist, bound);
  }
  return Accumulate<false, true>(a, b, dist, bound);
}

double PieceDistanceMemo::Distance(const Piece& a, const Piece& b) {
  if (!a.has_ids() || !b.has_ids()) return PieceDistance(a, b, *dist_);
  const size_t nr = std::min(a.reason.size(), b.reason.size());
  const size_t ns = std::min(a.result.size(), b.result.size());
  if (per_attr_.size() < nr + ns) per_attr_.resize(nr + ns);
  double total = 0.0;
  for (size_t i = 0; i < nr; ++i) {
    total += per_attr_[i].Distance(a.reason_ids[i], b.reason_ids[i], a.reason[i],
                                   b.reason[i], *dist_);
  }
  for (size_t i = 0; i < ns; ++i) {
    total += per_attr_[nr + i].Distance(a.result_ids[i], b.result_ids[i], a.result[i],
                                        b.result[i], *dist_);
  }
  return total;
}

double PieceDistanceMemo::DistanceBounded(const Piece& a, const Piece& b,
                                          double bound) {
  if (!a.has_ids() || !b.has_ids()) return PieceDistanceBounded(a, b, *dist_, bound);
  const size_t nr = std::min(a.reason.size(), b.reason.size());
  const size_t ns = std::min(a.result.size(), b.result.size());
  if (per_attr_.size() < nr + ns) per_attr_.resize(nr + ns);
  double total = 0.0;
  for (size_t i = 0; i < nr; ++i) {
    total += per_attr_[i].Distance(a.reason_ids[i], b.reason_ids[i], a.reason[i],
                                   b.reason[i], *dist_);
    if (total >= bound) return total;
  }
  for (size_t i = 0; i < ns; ++i) {
    total += per_attr_[nr + i].Distance(a.result_ids[i], b.result_ids[i], a.result[i],
                                        b.result[i], *dist_);
    if (total >= bound) return total;
  }
  return total;
}

}  // namespace mlnclean
