#include "index/piece.h"

namespace mlnclean {

std::vector<Value> Piece::AllValues() const {
  std::vector<Value> out = reason;
  out.insert(out.end(), result.begin(), result.end());
  return out;
}

std::string Piece::ToString(const Schema& schema,
                            const std::vector<AttrId>& reason_attrs,
                            const std::vector<AttrId>& result_attrs) const {
  std::string out = "{";
  bool first = true;
  auto append = [&](const std::vector<AttrId>& attrs, const std::vector<Value>& vals) {
    for (size_t i = 0; i < attrs.size() && i < vals.size(); ++i) {
      if (!first) out += ", ";
      first = false;
      out += schema.name(attrs[i]) + ": " + vals[i];
    }
  };
  append(reason_attrs, reason);
  append(result_attrs, result);
  out += "}";
  return out;
}

double PieceDistance(const Piece& a, const Piece& b, const DistanceFn& dist) {
  double total = 0.0;
  for (size_t i = 0; i < a.reason.size() && i < b.reason.size(); ++i) {
    total += dist(a.reason[i], b.reason[i]);
  }
  for (size_t i = 0; i < a.result.size() && i < b.result.size(); ++i) {
    total += dist(a.result[i], b.result[i]);
  }
  return total;
}

}  // namespace mlnclean
