// Data partitioning for distributed MLNClean (Section 6, Algorithm 3):
// k randomly seeded centroids, capacity-bounded assignment of each tuple
// to its nearest centroid, with max-heap-based eviction when a part
// overflows — yielding balanced parts of size at most ceil(|T|/k).

#ifndef MLNCLEAN_DISTRIBUTED_PARTITIONER_H_
#define MLNCLEAN_DISTRIBUTED_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/distance.h"
#include "common/executor.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// Partitioning knobs.
struct PartitionOptions {
  size_t num_parts = 4;
  DistanceMetric distance = DistanceMetric::kLevenshtein;
  uint64_t seed = 99;
  /// Executor for the tuple-to-centroid distance precompute (the O(n·k)
  /// kernel-call bulk of Algorithm 3). The assignment/eviction sweep
  /// itself stays sequential — evictions depend on every earlier
  /// placement — and distances are pure functions of (tuple, centroid),
  /// so the partition is bit-identical for any executor. Null = inline.
  Executor* executor = nullptr;
};

/// A k-way partition of tuple ids.
struct Partition {
  /// parts[i] = tuple ids assigned to part i (unordered).
  std::vector<std::vector<TupleId>> parts;
  /// The tuple chosen as centroid of each part.
  std::vector<TupleId> centroids;

  /// Maximum allowed part size ceil(|T|/k) used during construction.
  size_t capacity = 0;
};

/// Distance between two tuples: sum of attribute-wise string distances.
/// Cells with equal dictionary ids are distance 0 without a kernel call.
double TupleDistance(const Dataset& data, TupleId a, TupleId b,
                     const DistanceFn& dist);

/// Runs Algorithm 3. Fails when num_parts is 0 or exceeds the row count.
Result<Partition> PartitionDataset(const Dataset& data,
                                   const PartitionOptions& options);

}  // namespace mlnclean

#endif  // MLNCLEAN_DISTRIBUTED_PARTITIONER_H_
