#include "distributed/partitioner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "common/distance_memo.h"
#include "common/random.h"

namespace mlnclean {

double TupleDistance(const Dataset& data, TupleId a, TupleId b,
                     const DistanceFn& dist) {
  double total = 0.0;
  for (AttrId attr = 0; attr < static_cast<AttrId>(data.num_attrs()); ++attr) {
    ValueId ia = data.id_at(a, attr), ib = data.id_at(b, attr);
    if (ia == ib) continue;
    total += dist(data.dict(attr).value(ia), data.dict(attr).value(ib));
  }
  return total;
}

namespace {

// TupleDistance with a per-attribute id-pair memo: the assignment loop
// compares every tuple against the same k centroids, so each distinct
// (value, centroid value) pair per attribute pays for the kernel once.
double MemoTupleDistance(const Dataset& data, TupleId a, TupleId b,
                         const DistanceFn& dist,
                         std::vector<PairDistanceMemo>* memos) {
  double total = 0.0;
  for (AttrId attr = 0; attr < static_cast<AttrId>(data.num_attrs()); ++attr) {
    ValueId ia = data.id_at(a, attr), ib = data.id_at(b, attr);
    if (ia == ib) continue;
    total += (*memos)[static_cast<size_t>(attr)].Distance(
        ia, ib, data.dict(attr).value(ia), data.dict(attr).value(ib), dist);
  }
  return total;
}

}  // namespace

Result<Partition> PartitionDataset(const Dataset& data,
                                   const PartitionOptions& options) {
  const size_t n = data.num_rows();
  const size_t k = options.num_parts;
  if (k == 0) return Status::Invalid("num_parts must be > 0");
  if (k > n) {
    return Status::Invalid("num_parts (" + std::to_string(k) +
                           ") exceeds the number of tuples (" + std::to_string(n) +
                           ")");
  }
  // Per-attribute normalized distance: long values (names, descriptions)
  // must not dominate the tuple distance, or rows of the same entity that
  // differ in one long attribute scatter across parts.
  DistanceFn dist = MakeNormalizedDistanceFn(options.distance);
  Rng rng(options.seed);

  Partition partition;
  partition.capacity = (n + k - 1) / k;  // s = ceil(|T|/k)
  partition.parts.resize(k);

  // Line 3: k distinct random centroids, each seeding its own part.
  std::unordered_set<TupleId> centroid_set;
  while (centroid_set.size() < k) {
    centroid_set.insert(static_cast<TupleId>(rng.NextIndex(n)));
  }
  partition.centroids.assign(centroid_set.begin(), centroid_set.end());
  std::sort(partition.centroids.begin(), partition.centroids.end());

  // Per-part max-heap of (distance to centroid, tid).
  using HeapEntry = std::pair<double, TupleId>;
  std::vector<std::priority_queue<HeapEntry>> heaps(k);
  for (size_t p = 0; p < k; ++p) {
    heaps[p].emplace(0.0, partition.centroids[p]);
  }

  std::vector<PairDistanceMemo> memos(data.num_attrs());

  // With a parallel executor, precompute the full n x k tuple-to-centroid
  // distance matrix up front, sharded over tuples (each shard with its
  // own memo). The sequential sweep below then reads the matrix instead
  // of calling kernels; distances are pure, so the resulting partition is
  // bit-identical to the lazy sequential computation.
  ExecContext ctx;
  ctx.executor = options.executor;
  std::vector<double> matrix;
  const bool precomputed = ctx.parallelism() > 1 && n > 1;
  if (precomputed) {
    matrix.resize(n * k);
    const size_t shards = ctx.parallelism();
    const size_t chunk = (n + shards - 1) / shards;
    ParallelFor(shards, ctx, [&](size_t s) {
      std::vector<PairDistanceMemo> shard_memos(data.num_attrs());
      const size_t begin = s * chunk;
      const size_t end = std::min(n, begin + chunk);
      for (size_t tid = begin; tid < end; ++tid) {
        for (size_t p = 0; p < k; ++p) {
          matrix[tid * k + p] =
              MemoTupleDistance(data, static_cast<TupleId>(tid),
                                partition.centroids[p], dist, &shard_memos);
        }
      }
    });
  }

  auto nearest_part = [&](TupleId tid, bool require_space) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_p = k;  // sentinel: no eligible part
    for (size_t p = 0; p < k; ++p) {
      if (require_space && heaps[p].size() >= partition.capacity) continue;
      double d = precomputed
                     ? matrix[static_cast<size_t>(tid) * k + p]
                     : MemoTupleDistance(data, tid, partition.centroids[p], dist,
                                         &memos);
      if (d < best) {
        best = d;
        best_p = p;
      }
    }
    return std::make_pair(best_p, best);
  };

  for (TupleId tid = 0; tid < static_cast<TupleId>(n); ++tid) {
    if (centroid_set.count(tid) > 0) continue;  // already placed
    auto [p, d] = nearest_part(tid, /*require_space=*/false);
    if (heaps[p].size() < partition.capacity) {
      heaps[p].emplace(d, tid);
      continue;
    }
    // Lines 10-14: the nearest part is full. If the newcomer is closer to
    // the centroid than the part's farthest member, it displaces it and
    // the evicted tuple goes to its closest non-full part; otherwise the
    // newcomer itself goes to its closest non-full part.
    TupleId evicted = tid;
    auto [top_d, top_tid] = heaps[p].top();
    if (d < top_d) {
      heaps[p].pop();
      heaps[p].emplace(d, tid);
      evicted = top_tid;
    }
    auto [q, dq] = nearest_part(evicted, /*require_space=*/true);
    // Total capacity k*s >= n guarantees an eligible part exists.
    heaps[q].emplace(dq, evicted);
  }

  for (size_t p = 0; p < k; ++p) {
    auto& part = partition.parts[p];
    part.reserve(heaps[p].size());
    while (!heaps[p].empty()) {
      part.push_back(heaps[p].top().second);
      heaps[p].pop();
    }
    std::sort(part.begin(), part.end());
  }
  return partition;
}

}  // namespace mlnclean
