// The shard shipping/merging protocol shared by the distributed driver
// (distributed_pipeline.cc) and the serving fleet (src/fleet/): materialize
// dictionary-bearing shards from a global table, optionally round-trip
// them through the packed wire codec, and copy cleaned shard rows back
// into the global rows they own with the id-remap merge.
//
// The id contract, in one place: a shard is built with
// Dataset::EmptyLike(source) + AppendRowFrom, so it ships with a copy of
// the source's dictionaries — every id below the shipped dictionary size
// means the same value in the shard, in its siblings, and in the global
// table. Cleaning may intern repaired values *on top* of the shipped
// dictionaries; those ids are shard-local and are re-interned globally by
// value at merge time. Capturing the shipped sizes *before* merging any
// shard (not the global dictionary sizes mid-merge, which grow as shards
// intern) is what makes the merge order-independent per cell and the
// whole gather deterministic in shard order.

#ifndef MLNCLEAN_DISTRIBUTED_SHARD_MERGE_H_
#define MLNCLEAN_DISTRIBUTED_SHARD_MERGE_H_

#include <vector>

#include "common/executor.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace mlnclean {

/// Per-attribute dictionary sizes of `source` — the shipped-size watermark
/// the merge remaps against. Capture once, before any shard merges back.
std::vector<size_t> ShippedDictSizes(const Dataset& source);

/// Builds one sub-dataset per group: EmptyLike(source) + AppendRowFrom for
/// every tuple id in the group, in group order. Each shard carries a copy
/// of the global dictionaries, so shard ids stay aligned with the source.
std::vector<Dataset> MaterializeShards(
    const Dataset& source, const std::vector<std::vector<TupleId>>& groups);

/// Round-trips every shard through EncodePacked/DecodePacked, as a remote
/// worker would receive it — value- and id-identical by the codec's
/// contract, so downstream merging is unaffected. Decoding fans out on
/// `executor` (null = inline); the first failure status wins.
Status ShipShardsPacked(std::vector<Dataset>* shards, Executor* executor);

/// Copies shard row `local` (for every local row) into global row
/// `mapping[local]` of `*global`: ids below the shipped watermark pass
/// through untouched, anything the shard interned on top is re-interned
/// globally by value. Sequential by design — re-interning mutates the
/// global dictionaries — so callers merge shards one at a time, in
/// deterministic shard order.
void MergeShardRows(const Dataset& shard_clean,
                    const std::vector<TupleId>& mapping,
                    const std::vector<size_t>& shipped_sizes, Dataset* global);

}  // namespace mlnclean

#endif  // MLNCLEAN_DISTRIBUTED_SHARD_MERGE_H_
