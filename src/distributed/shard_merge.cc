#include "distributed/shard_merge.h"

#include <cstdint>
#include <utility>

namespace mlnclean {

std::vector<size_t> ShippedDictSizes(const Dataset& source) {
  const auto num_attrs = static_cast<AttrId>(source.num_attrs());
  std::vector<size_t> sizes(static_cast<size_t>(num_attrs));
  for (AttrId a = 0; a < num_attrs; ++a) {
    sizes[static_cast<size_t>(a)] = source.dict(a).size();
  }
  return sizes;
}

std::vector<Dataset> MaterializeShards(
    const Dataset& source, const std::vector<std::vector<TupleId>>& groups) {
  std::vector<Dataset> shards;
  shards.reserve(groups.size());
  for (const std::vector<TupleId>& group : groups) {
    shards.push_back(Dataset::EmptyLike(source));
    shards.back().Reserve(group.size());
    for (TupleId gtid : group) {
      shards.back().AppendRowFrom(source, gtid);
    }
  }
  return shards;
}

Status ShipShardsPacked(std::vector<Dataset>* shards, Executor* executor) {
  const size_t k = shards->size();
  std::vector<Status> shipped(k);
  ParallelFor(k, executor, [&](size_t p) {
    const std::vector<uint8_t> wire = (*shards)[p].EncodePacked();
    auto decoded = Dataset::DecodePacked(wire);
    if (!decoded.ok()) {
      shipped[p] = decoded.status();
      return;
    }
    (*shards)[p] = std::move(*decoded);
  });
  for (size_t p = 0; p < k; ++p) MLN_RETURN_NOT_OK(shipped[p]);
  return Status::OK();
}

void MergeShardRows(const Dataset& shard_clean,
                    const std::vector<TupleId>& mapping,
                    const std::vector<size_t>& shipped_sizes, Dataset* global) {
  const auto num_attrs = static_cast<AttrId>(global->num_attrs());
  for (size_t local = 0; local < mapping.size(); ++local) {
    for (AttrId a = 0; a < num_attrs; ++a) {
      const ValueId id = shard_clean.id_at(static_cast<TupleId>(local), a);
      if (id < shipped_sizes[static_cast<size_t>(a)]) {
        global->set_id(mapping[local], a, id);
      } else {
        global->set(mapping[local], a, shard_clean.dict(a).value(id));
      }
    }
  }
}

}  // namespace mlnclean
