#include "distributed/distributed_pipeline.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "cleaning/dedup.h"
#include "common/executor.h"
#include "common/timer.h"
#include "distributed/shard_merge.h"

namespace mlnclean {

double DistributedResult::SimulatedMakespan(size_t workers) const {
  if (workers == 0 || part_seconds.empty()) return 0.0;
  std::vector<double> costs = part_seconds;
  std::sort(costs.begin(), costs.end(), std::greater<double>());
  std::vector<double> load(std::min(workers, costs.size()), 0.0);
  for (double c : costs) {
    auto it = std::min_element(load.begin(), load.end());
    *it += c;
  }
  return *std::max_element(load.begin(), load.end());
}

DistributedMlnClean::DistributedMlnClean(DistributedOptions options)
    : options_(std::move(options)) {}

Result<DistributedResult> DistributedMlnClean::Clean(const Dataset& dirty,
                                                     const RuleSet& rules) const {
  if (options_.num_parts == 0) return Status::Invalid("num_parts must be > 0");
  if (options_.num_workers == 0) return Status::Invalid("num_workers must be > 0");
  // One compiled model serves every part: rule validation happens once,
  // and the Eq. 6 weight adjustment below is a model-level operation.
  MLN_ASSIGN_OR_RETURN(
      CleanModel model,
      CleaningEngine(options_.cleaning).Compile(rules.schema(), rules));

  // The worker set part jobs are scheduled on: the configured executor,
  // or one transient pool per run (which also parallelizes the
  // partitioner's centroid distances below) — one pool for the whole run
  // where the old driver spun up a fresh ThreadPool per phase.
  std::unique_ptr<PoolExecutor> owned_pool;
  Executor* workers = options_.executor;
  if (workers == nullptr) {
    if (options_.num_workers > 1) {
      owned_pool = std::make_unique<PoolExecutor>(options_.num_workers);
      workers = owned_pool.get();
    } else {
      workers = SequentialExecutor();
    }
  }

  Timer wall;
  PartitionOptions popts;
  popts.num_parts = std::min(options_.num_parts, dirty.num_rows());
  popts.distance = options_.cleaning.distance;
  popts.seed = options_.partition_seed;
  popts.executor = workers;
  MLN_ASSIGN_OR_RETURN(Partition partition, PartitionDataset(dirty, popts));
  const size_t k = partition.parts.size();

  // Materialize the per-part sub-datasets (local tid -> global tid) over
  // the shared shipping protocol (shard_merge.h): each shard carries a
  // copy of the global dictionaries, so its rows copy over by id and
  // every shard's ids stay aligned with the global table (the merge
  // below remaps whatever a shard interned on top). Optionally round-trip
  // each shard through the packed wire format, as a remote worker would
  // receive it — id-identical by the codec contract, so the whole run
  // stays bit-identical to in-process shipping.
  std::vector<Dataset> part_data = MaterializeShards(dirty, partition.parts);
  if (options_.ship_packed) {
    MLN_RETURN_NOT_OK(ShipShardsPacked(&part_data, workers));
  }

  // One staged engine session per part; parts run concurrently on the
  // worker pool, each part runs with the model's own thread setting. The
  // per-decision trace is skipped (this driver never reads it) and the
  // shared CancelToken aborts any part at its next block/shard boundary.
  std::vector<CleanSession> sessions;
  sessions.reserve(k);
  for (size_t p = 0; p < k; ++p) {
    SessionOptions sopts;
    sopts.cancel = options_.cancel;
    sopts.collect_report = false;
    sessions.push_back(model.NewSession(part_data[p], std::move(sopts)));
  }

  // ---- Phase A (parallel): per-part index + AGP + local weight learning.
  // RSC is deliberately *not* part of phase A: the Eq. 6 weight merge must
  // happen between learning and RSC so every part cleans with the global
  // weights — which is exactly the RunUntil(kLearn) cut of the stage plan.
  std::vector<double> phase_a(k, 0.0);
  std::vector<Status> statuses(k);
  ParallelFor(k, workers, [&](size_t p) {
    Timer t;
    statuses[p] = sessions[p].RunUntil(Stage::kLearn);
    phase_a[p] = t.ElapsedSeconds();
  });
  for (size_t p = 0; p < k; ++p) MLN_RETURN_NOT_OK(statuses[p]);

  // ---- Global weight adjustment (Eq. 6): a model-level operation over
  // the concurrent sessions.
  std::vector<CleanSession*> session_ptrs;
  session_ptrs.reserve(k);
  for (CleanSession& session : sessions) session_ptrs.push_back(&session);
  MLN_ASSIGN_OR_RETURN(const size_t global_weights,
                       model.AdjustWeightsAcross(session_ptrs));

  // ---- Phase B (parallel): RSC + FSCR per part, into the session-owned
  // cleaned dataset. RunUntil(kFscr) stops short of kDedup: duplicate
  // elimination is global, in the gather phase below. The write-back into
  // the global table happens sequentially below because remapping may
  // intern shard-local values globally.
  DistributedResult result;
  result.cleaned = dirty.Clone();
  result.global_weights = global_weights;
  std::vector<double> phase_b(k, 0.0);
  ParallelFor(k, workers, [&](size_t p) {
    Timer t;
    statuses[p] = sessions[p].RunUntil(Stage::kFscr);
    phase_b[p] = t.ElapsedSeconds();
  });
  for (size_t p = 0; p < k; ++p) MLN_RETURN_NOT_OK(statuses[p]);

  // ---- Merge: copy each shard's cleaned rows back into the global rows
  // it owns with the shared id-remap merge (shard_merge.h), sequentially
  // in part order — merging interns shard-local repairs into the global
  // dictionaries, so the shipped-size watermark is captured once up
  // front.
  const std::vector<size_t> shipped_size = ShippedDictSizes(dirty);
  for (size_t p = 0; p < k; ++p) {
    MergeShardRows(sessions[p].cleaned(), partition.parts[p], shipped_size,
                   &result.cleaned);
  }

  // ---- Gather: global duplicate elimination, as in the stand-alone flow.
  std::vector<std::pair<TupleId, TupleId>> removed;
  if (options_.cleaning.remove_duplicates) {
    result.deduped = RemoveDuplicates(result.cleaned, &removed);
  } else {
    result.deduped = result.cleaned;
  }
  result.duplicates_removed = removed.size();

  result.part_seconds.resize(k);
  for (size_t p = 0; p < k; ++p) result.part_seconds[p] = phase_a[p] + phase_b[p];
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

}  // namespace mlnclean
