// Distributed MLNClean (Section 6). The paper deploys the stand-alone
// cleaner on Spark: partition the data (Algorithm 3), clean every part
// independently on a worker, adjust the learned weights globally (Eq. 6),
// and gather the parts, removing duplicates at the end. This module
// reproduces that dataflow as a thin adapter over the CleaningEngine: one
// compiled model, one staged CleanSession per part on a thread-pool
// worker set — phase A is RunUntil(kLearn), the Eq. 6 merge is the
// model-level AdjustWeightsAcross, phase B is RunUntil(kFscr), and
// duplicate elimination happens globally in the gather. See DESIGN.md for
// the Spark-substitution rationale. Worker scaling is reported both as
// wall-clock (bounded by host cores) and as a deterministic simulated
// makespan (LPT scheduling of measured per-part costs), which preserves
// the paper's scaling shape on any host.

#ifndef MLNCLEAN_DISTRIBUTED_DISTRIBUTED_PIPELINE_H_
#define MLNCLEAN_DISTRIBUTED_DISTRIBUTED_PIPELINE_H_

#include <vector>

#include "cleaning/engine.h"
#include "common/cancellation.h"
#include "distributed/partitioner.h"

namespace mlnclean {

/// Knobs of the distributed driver.
struct DistributedOptions {
  CleaningOptions cleaning;
  /// Number of data parts (Spark partitions).
  size_t num_parts = 8;
  /// Number of concurrent workers executing part jobs (ignored when
  /// `executor` is set — its concurrency rules then).
  size_t num_workers = 4;
  /// Worker set the per-part sessions run on. Null spawns one transient
  /// PoolExecutor(num_workers) per Clean call — the simulated Spark
  /// worker set whose size the Table 6 sweeps vary. Set it to schedule
  /// part jobs onto a shared pool instead (e.g. the process executor);
  /// the caller-participation ParallelFor makes that safe even when the
  /// per-part cleaning options target the same executor.
  Executor* executor = nullptr;
  uint64_t partition_seed = 99;
  /// Round every materialized shard through the packed wire codec
  /// (Dataset::EncodePacked -> DecodePacked) before its part session
  /// starts — exactly what a remote worker process would receive. Packed
  /// images preserve the id universe, so a ship_packed run is
  /// bit-identical to in-process shipping (a distributed-test gate).
  bool ship_packed = false;
  /// Cooperative cancellation: shared with every per-part session, so a
  /// cancelled run aborts at the next per-part block/shard boundary with
  /// Status::Cancelled and leaves the input untouched.
  CancelToken cancel;
};

/// Output of a distributed run.
struct DistributedResult {
  /// Repaired dataset, row-aligned with the dirty input.
  Dataset cleaned;
  /// After global duplicate elimination.
  Dataset deduped;
  /// Per-part compute cost in seconds (stage I + stage II of that part).
  std::vector<double> part_seconds;
  /// Wall-clock of the whole run on this host.
  double wall_seconds = 0.0;
  /// Number of γs in the global weight table.
  size_t global_weights = 0;
  /// Duplicates removed in the gather phase.
  size_t duplicates_removed = 0;

  /// Deterministic makespan of scheduling part_seconds onto `workers`
  /// identical workers with longest-processing-time-first — the paper's
  /// Table 6 scaling shape independent of host core count.
  double SimulatedMakespan(size_t workers) const;
};

/// The distributed MLNClean driver.
class DistributedMlnClean {
 public:
  explicit DistributedMlnClean(DistributedOptions options);

  const DistributedOptions& options() const { return options_; }

  /// Partition -> per-part stage I (parallel) -> Eq. 6 weight merge ->
  /// per-part stage II (parallel) -> gather + duplicate removal.
  Result<DistributedResult> Clean(const Dataset& dirty, const RuleSet& rules) const;

 private:
  DistributedOptions options_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_DISTRIBUTED_DISTRIBUTED_PIPELINE_H_
