// Cell-level repair accuracy (Section 7.1, Eq. 7): precision = correctly
// repaired attribute values / updated attribute values, recall = correctly
// repaired / erroneous, F1 their harmonic mean.

#ifndef MLNCLEAN_EVAL_METRICS_H_
#define MLNCLEAN_EVAL_METRICS_H_

#include <cstddef>

#include "dataset/dataset.h"
#include "errorgen/injector.h"

namespace mlnclean {

/// Counters and derived scores of one repair run.
struct RepairMetrics {
  size_t updated = 0;    // cells the cleaner changed
  size_t correct = 0;    // changed cells now matching the ground truth
  size_t erroneous = 0;  // cells that were wrong in the dirty input

  double Precision() const {
    return updated == 0 ? 0.0 : static_cast<double>(correct) / updated;
  }
  double Recall() const {
    return erroneous == 0 ? 1.0 : static_cast<double>(correct) / erroneous;
  }
  double F1() const {
    double p = Precision();
    double r = Recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Scores a cleaned dataset (row-aligned with `dirty`) against the truth.
RepairMetrics EvaluateRepair(const Dataset& dirty, const Dataset& cleaned,
                             const GroundTruth& truth);

}  // namespace mlnclean

#endif  // MLNCLEAN_EVAL_METRICS_H_
