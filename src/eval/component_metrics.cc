#include "eval/component_metrics.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "cleaning/agp.h"
#include "cleaning/fscr.h"
#include "cleaning/rsc.h"
#include "index/mln_index.h"

namespace mlnclean {

namespace {

// Ground-truth values of a tuple on the given attributes.
std::vector<Value> TruthValues(const GroundTruth& truth, TupleId tid,
                               const std::vector<AttrId>& attrs) {
  std::vector<Value> out;
  out.reserve(attrs.size());
  for (AttrId a : attrs) out.push_back(truth.TrueValue(tid, a));
  return out;
}

// The most common ground-truth value vector among `tuples` (ties: first
// encountered).
std::vector<Value> PluralityTruth(const GroundTruth& truth,
                                  const std::vector<TupleId>& tuples,
                                  const std::vector<AttrId>& attrs) {
  std::map<std::vector<Value>, size_t> counts;
  const std::vector<Value>* best = nullptr;
  size_t best_count = 0;
  for (TupleId tid : tuples) {
    auto [it, inserted] = counts.emplace(TruthValues(truth, tid, attrs), 0);
    (void)inserted;
    ++it->second;
    if (it->second > best_count) {
      best_count = it->second;
      best = &it->first;
    }
  }
  return best == nullptr ? std::vector<Value>{} : *best;
}

std::string KeyOf(const std::vector<Value>& values) {
  return MlnIndex::KeyOf(values);
}

}  // namespace

Result<ComponentEvaluation> EvaluateComponents(const Dataset& dirty,
                                               const RuleSet& rules,
                                               const CleaningOptions& options,
                                               const GroundTruth& truth) {
  MLN_RETURN_NOT_OK(options.Validate());
  DistanceFn dist = MakeNormalizedDistanceFn(options.distance);
  MLN_ASSIGN_OR_RETURN(MlnIndex index, MlnIndex::Build(dirty, rules));

  ComponentEvaluation eval;

  // ---- Pre-AGP snapshot: which groups are really abnormal, and what is
  // the plurality true reason of each group's tuples.
  struct GroupTruth {
    bool really_abnormal = false;
    std::vector<Value> plurality_reason;
  };
  // (block, reason key) -> truth classification.
  std::vector<std::unordered_map<std::string, GroupTruth>> group_truth(
      index.num_blocks());
  size_t real_abnormal_total = 0;
  for (size_t bi = 0; bi < index.num_blocks(); ++bi) {
    const Block& block = index.block(bi);
    const Constraint& rule = rules.rule(block.rule_index);
    for (const Group& group : block.groups) {
      std::vector<TupleId> members;
      for (const auto& piece : group.pieces) {
        members.insert(members.end(), piece.tuples.begin(), piece.tuples.end());
      }
      GroupTruth gt;
      gt.plurality_reason = PluralityTruth(truth, members, rule.reason_attrs());
      bool any_match = false;
      for (TupleId tid : members) {
        if (TruthValues(truth, tid, rule.reason_attrs()) == group.key) {
          any_match = true;
          break;
        }
      }
      gt.really_abnormal = !any_match;
      if (gt.really_abnormal) ++real_abnormal_total;
      group_truth[bi].emplace(KeyOf(group.key), std::move(gt));
    }
  }

  // ---- AGP.
  CleaningReport report;
  RunAgpAll(&index, options, dist, &report);

  // Blocks are positionally aligned with rules, so report.agp[i].block is
  // also the index into group_truth.
  eval.agp.detected = report.agp.size();
  eval.agp.real = real_abnormal_total;
  eval.dag = report.NumDetectedAbnormalPieces();
  for (const auto& rec : report.agp) {
    const auto& map = group_truth[rec.block];
    auto it = map.find(KeyOf(rec.abnormal_key));
    if (it == map.end()) continue;
    if (rec.merged && it->second.really_abnormal &&
        rec.target_key == it->second.plurality_reason) {
      ++eval.agp.correct;
    }
  }

  // ---- Post-AGP snapshot for the RSC recall denominator: γs whose values
  // differ from the plurality truth of their tuples.
  size_t erroneous_pieces = 0;
  for (size_t bi = 0; bi < index.num_blocks(); ++bi) {
    const Block& block = index.block(bi);
    const Constraint& rule = rules.rule(block.rule_index);
    const std::vector<AttrId> rule_attrs = rule.attrs();
    for (const Group& group : block.groups) {
      for (const auto& piece : group.pieces) {
        if (piece.AllValues() != PluralityTruth(truth, piece.tuples, rule_attrs)) {
          ++erroneous_pieces;
        }
      }
    }
  }

  // ---- Weight learning + RSC.
  if (options.learn_weights) {
    index.LearnWeights(options.learner);
  } else {
    index.AssignPriorWeights();
  }
  RunRscAll(&index, options, dist, &report);

  eval.rsc.detected = report.rsc.size();
  eval.rsc.real = erroneous_pieces;
  for (const auto& rec : report.rsc) {
    const Constraint& rule = rules.rule(rec.block);
    if (rec.winner_values ==
        PluralityTruth(truth, rec.affected_tuples, rule.attrs())) {
      ++eval.rsc.correct;
    }
  }

  // ---- FSCR.
  eval.cleaned = dirty.Clone();
  RunFscr(dirty, rules, index, options, &eval.cleaned, &report);

  size_t fscr_correct = 0;
  size_t erroneous_conflict_cells = 0;
  for (const auto& rec : report.fscr) {
    for (AttrId attr : rec.conflict_attrs) {
      const Value& dirty_v = dirty.at(rec.tuple, attr);
      const Value& true_v = truth.TrueValue(rec.tuple, attr);
      const Value& final_v = eval.cleaned.at(rec.tuple, attr);
      if (dirty_v != true_v) ++erroneous_conflict_cells;
      if (final_v != dirty_v && final_v == true_v) ++fscr_correct;
    }
  }
  eval.fscr.correct = fscr_correct;
  eval.fscr.detected = erroneous_conflict_cells;
  eval.fscr.real = truth.NumErrors();

  eval.overall = EvaluateRepair(dirty, eval.cleaned, truth);
  eval.report = std::move(report);
  return eval;
}

}  // namespace mlnclean
