// Per-component accuracy (Section 7.3): AGP, RSC and FSCR each get a
// precision/recall pair, judged against the injected ground truth.
//
//  * Precision-A = correctly merged abnormal groups / detected abnormal
//    groups; Recall-A = correctly merged / real abnormal groups. A group
//    is *really* abnormal when its reason key matches the true reason
//    values of none of its member tuples; a merge is *correct* when the
//    target group's key equals the plurality true reason of the abnormal
//    group's tuples.
//  * Precision-R = correctly repaired γs / repaired γs; Recall-R =
//    correctly repaired γs / γs containing errors (in the post-AGP
//    state). A repaired γ is correct when the winner's values equal the
//    plurality ground-truth values of the replaced γ's tuples.
//  * Precision-F = attribute values correctly repaired by FSCR /
//    erroneous attribute values among detected conflicts; Recall-F =
//    correctly repaired by FSCR / all erroneous attribute values.

#ifndef MLNCLEAN_EVAL_COMPONENT_METRICS_H_
#define MLNCLEAN_EVAL_COMPONENT_METRICS_H_

#include "cleaning/options.h"
#include "cleaning/report.h"
#include "common/result.h"
#include "errorgen/injector.h"
#include "eval/metrics.h"
#include "rules/constraint.h"

namespace mlnclean {

/// One component's precision/recall with its raw counters.
struct ComponentScore {
  size_t correct = 0;
  size_t detected = 0;  // precision denominator
  size_t real = 0;      // recall denominator

  double Precision() const {
    return detected == 0 ? 0.0 : static_cast<double>(correct) / detected;
  }
  double Recall() const {
    return real == 0 ? (correct == 0 ? 1.0 : 0.0)
                     : static_cast<double>(correct) / real;
  }
};

/// Full instrumented evaluation of one cleaning run.
struct ComponentEvaluation {
  ComponentScore agp;
  /// #dag: γs inside detected abnormal groups (Figure 8).
  size_t dag = 0;
  ComponentScore rsc;
  ComponentScore fscr;
  RepairMetrics overall;
  CleaningReport report;
  Dataset cleaned;
};

/// Runs the MLNClean stages with instrumentation and scores every
/// component against `truth`. Duplicate removal is skipped (it does not
/// affect cell metrics).
Result<ComponentEvaluation> EvaluateComponents(const Dataset& dirty,
                                               const RuleSet& rules,
                                               const CleaningOptions& options,
                                               const GroundTruth& truth);

}  // namespace mlnclean

#endif  // MLNCLEAN_EVAL_COMPONENT_METRICS_H_
