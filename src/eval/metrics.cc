#include "eval/metrics.h"

namespace mlnclean {

RepairMetrics EvaluateRepair(const Dataset& dirty, const Dataset& cleaned,
                             const GroundTruth& truth) {
  RepairMetrics m;
  const auto rows = static_cast<TupleId>(dirty.num_rows());
  const auto attrs = static_cast<AttrId>(dirty.num_attrs());
  for (TupleId tid = 0; tid < rows; ++tid) {
    for (AttrId attr = 0; attr < attrs; ++attr) {
      const Value& dirty_v = dirty.at(tid, attr);
      const Value& clean_v = cleaned.at(tid, attr);
      const Value& true_v = truth.TrueValue(tid, attr);
      if (dirty_v != true_v) ++m.erroneous;
      if (clean_v != dirty_v) {
        ++m.updated;
        if (clean_v == true_v) ++m.correct;
      }
    }
  }
  return m;
}

}  // namespace mlnclean
