#include "dataset/value_dict.h"

namespace mlnclean {

namespace {

// FNV-1a; the low 32 bits index the slot table.
uint32_t HashValue(std::string_view v) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : v) {
    h ^= c;
    h *= 1099511628211ull;
  }
  // Fold the high half in so short values still spread across slots.
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace

ValueDict::ValueDict() {
  values_.emplace_back();  // id 0 = NULL
  hashes_.push_back(HashValue(""));
  slots_.resize(16);
  Slot& s = slots_[hashes_[0] & (slots_.size() - 1)];
  s.hash = hashes_[0];
  s.id_plus_one = 1;
}

ValueId ValueDict::Intern(std::string_view v) {
  const uint32_t h = HashValue(v);
  const size_t mask = slots_.size() - 1;
  size_t i = h & mask;
  while (true) {
    Slot& s = slots_[i];
    if (s.id_plus_one == 0) break;
    if (s.hash == h && values_[s.id_plus_one - 1] == v) {
      ValueId id = s.id_plus_one - 1;
      if (id == kNullValueId && null_rank_ == kNeverUsed) {
        null_rank_ = values_.size() - 1;
      }
      return id;
    }
    i = (i + 1) & mask;
  }
  const ValueId id = static_cast<ValueId>(values_.size());
  values_.emplace_back(v);
  hashes_.push_back(h);
  slots_[i] = Slot{h, id + 1};
  if (values_.size() * 4 >= slots_.size() * 3) Grow();
  return id;
}

ValueId ValueDict::Find(std::string_view v) const {
  const uint32_t h = HashValue(v);
  const size_t mask = slots_.size() - 1;
  size_t i = h & mask;
  while (true) {
    const Slot& s = slots_[i];
    if (s.id_plus_one == 0) return kInvalidValueId;
    if (s.hash == h && values_[s.id_plus_one - 1] == v) return s.id_plus_one - 1;
    i = (i + 1) & mask;
  }
}

void ValueDict::Grow() {
  std::vector<Slot> grown(slots_.size() * 2);
  const size_t mask = grown.size() - 1;
  for (size_t id = 0; id < values_.size(); ++id) {
    size_t i = hashes_[id] & mask;
    while (grown[i].id_plus_one != 0) i = (i + 1) & mask;
    grown[i] = Slot{hashes_[id], static_cast<uint32_t>(id + 1)};
  }
  slots_ = std::move(grown);
}

std::vector<Value> ValueDict::FirstAppearanceDomain() const {
  std::vector<Value> out;
  out.reserve(values_.size());
  for (size_t id = 1; id < values_.size(); ++id) {
    if (null_rank_ == out.size()) out.emplace_back();  // splice NULL in
    out.push_back(values_[id]);
  }
  if (null_rank_ != kNeverUsed && null_rank_ >= out.size()) out.emplace_back();
  return out;
}

}  // namespace mlnclean
