// Relational schema: an ordered list of attribute names with index lookup.

#ifndef MLNCLEAN_DATASET_SCHEMA_H_
#define MLNCLEAN_DATASET_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace mlnclean {

/// Index of an attribute inside a Schema.
using AttrId = int;

/// Ordered set of uniquely named attributes.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; attribute names must be non-empty and unique.
  static Result<Schema> Make(std::vector<std::string> names);

  size_t num_attrs() const { return names_.size(); }

  const std::string& name(AttrId id) const { return names_[static_cast<size_t>(id)]; }

  const std::vector<std::string>& names() const { return names_; }

  /// Id of the attribute called `name`, or NotFound.
  Result<AttrId> Find(std::string_view name) const;

  /// True when `id` addresses an attribute of this schema.
  bool Contains(AttrId id) const {
    return id >= 0 && static_cast<size_t>(id) < names_.size();
  }

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> by_name_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_DATASET_SCHEMA_H_
