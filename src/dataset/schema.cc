#include "dataset/schema.h"

namespace mlnclean {

Result<Schema> Schema::Make(std::vector<std::string> names) {
  Schema schema;
  schema.by_name_.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].empty()) {
      return Status::Invalid("attribute name at position " + std::to_string(i) +
                             " is empty");
    }
    auto [it, inserted] = schema.by_name_.emplace(names[i], static_cast<AttrId>(i));
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("duplicate attribute name: " + names[i]);
    }
  }
  schema.names_ = std::move(names);
  return schema;
}

Result<AttrId> Schema::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("no attribute named '" + std::string(name) + "'");
  }
  return it->second;
}

}  // namespace mlnclean
