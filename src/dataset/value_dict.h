// ValueDict: the per-attribute dictionary of a columnar Dataset. Each
// distinct cell value of one attribute is interned once and addressed by a
// dense ValueId; NULL (the empty string) is always id 0. Cleaning layers
// compare and hash ValueIds instead of raw value bytes: id equality is
// value equality within one dictionary, and a (min, max) id pair is a
// perfect memo key for symmetric distances.
//
// The lookup table is flat open addressing (hash + short linear probe, no
// per-node allocation); id -> value storage is a deque so references
// returned by value() stay valid while the dictionary grows.

#ifndef MLNCLEAN_DATASET_VALUE_DICT_H_
#define MLNCLEAN_DATASET_VALUE_DICT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace mlnclean {

/// A cell value. Empty string represents NULL.
using Value = std::string;

/// Dense id of a distinct value inside one attribute's dictionary.
using ValueId = uint32_t;

/// The id NULL (empty string) always interns to.
inline constexpr ValueId kNullValueId = 0;

/// Sentinel returned by ValueDict::Find for values not in the dictionary.
inline constexpr ValueId kInvalidValueId = ~ValueId{0};

/// Seed for MixValueIdHash chains.
inline constexpr uint64_t kValueIdHashSeed = 0x9e3779b97f4a7c15ull;

/// Order-sensitive 64-bit mixer for hashing id tuples (splitmix-style
/// finalizer per element). Shared by every layer that keys a hash table on
/// ValueId sequences: grounding's binding dedup, the index's group
/// buckets, duplicate elimination's row keys, and violation grouping.
inline uint64_t MixValueIdHash(uint64_t h, ValueId id) {
  uint64_t x = h ^ (static_cast<uint64_t>(id) + kValueIdHashSeed);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  return x;
}

/// MixValueIdHash folded over a whole id vector.
inline uint64_t HashValueIds(const std::vector<ValueId>& ids) {
  uint64_t h = kValueIdHashSeed;
  for (ValueId id : ids) h = MixValueIdHash(h, id);
  return h;
}

/// String <-> dense id dictionary for one attribute.
class ValueDict {
 public:
  ValueDict();

  /// Returns the id of `v`, interning it on first sight. The first intern
  /// of "" records its first-appearance rank for Domain ordering.
  ValueId Intern(std::string_view v);

  /// Returns the id of `v` without inserting; kInvalidValueId if absent.
  ValueId Find(std::string_view v) const;

  /// The value behind an id. References stay valid across Intern calls.
  const Value& value(ValueId id) const { return values_[id]; }

  /// Number of ids, including the always-present NULL id 0.
  size_t size() const { return values_.size(); }

  /// True once some cell actually held NULL (id 0 exists regardless).
  bool null_used() const { return null_rank_ != kNeverUsed; }

  /// Rank NULL first appeared at in the Domain ordering, or kNoNullRank
  /// when no cell ever held NULL. With the values in id order, this is the
  /// one extra datum a snapshot needs to reproduce a dictionary exactly:
  /// re-interning values 1..size-1 in id order and restoring the null rank
  /// yields a dictionary with identical ids and an identical Domain.
  static constexpr size_t kNoNullRank = ~size_t{0};
  size_t null_rank() const { return null_rank_; }

  /// Snapshot decode support: overwrites the null rank recorded by Intern.
  /// `rank` must be kNoNullRank or <= the number of non-null values.
  void RestoreNullRank(size_t rank) { null_rank_ = rank; }

  /// Distinct values ever written through this dictionary in
  /// first-appearance order. NULL appears at the rank it was first used at
  /// and is omitted entirely when no cell ever held it.
  std::vector<Value> FirstAppearanceDomain() const;

 private:
  static constexpr size_t kNeverUsed = kNoNullRank;

  // Slots store (value hash, id + 1); id_plus_one == 0 marks empty.
  struct Slot {
    uint32_t hash = 0;
    uint32_t id_plus_one = 0;
  };

  void Grow();

  std::deque<Value> values_;    // id -> value (stable references)
  std::vector<uint32_t> hashes_;  // id -> full hash, for rehashing
  std::vector<Slot> slots_;     // power-of-two open addressing
  size_t null_rank_ = kNeverUsed;  // non-null values interned before first ""
};

}  // namespace mlnclean

#endif  // MLNCLEAN_DATASET_VALUE_DICT_H_
