#include "dataset/dataset.h"

#include <unordered_set>

namespace mlnclean {

Result<Dataset> Dataset::Make(Schema schema, std::vector<std::vector<Value>> rows) {
  Dataset ds(std::move(schema));
  ds.rows_.reserve(rows.size());
  for (auto& row : rows) {
    MLN_RETURN_NOT_OK(ds.Append(std::move(row)));
  }
  return ds;
}

Result<Dataset> Dataset::FromCsv(std::string_view text) {
  MLN_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text));
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(table.header)));
  return Make(std::move(schema), std::move(table.rows));
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path) {
  MLN_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(table.header)));
  return Make(std::move(schema), std::move(table.rows));
}

Status Dataset::Append(std::vector<Value> row) {
  if (row.size() != schema_.num_attrs()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) +
                           " does not match schema arity " +
                           std::to_string(schema_.num_attrs()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::vector<Value> Dataset::Domain(AttrId attr) const {
  std::vector<Value> out;
  std::unordered_set<std::string_view> seen;
  for (const auto& row : rows_) {
    const Value& v = row[static_cast<size_t>(attr)];
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

CsvTable Dataset::ToCsv() const {
  CsvTable table;
  table.header = schema_.names();
  table.rows = rows_;
  return table;
}

}  // namespace mlnclean
