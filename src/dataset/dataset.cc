#include "dataset/dataset.h"

#include <algorithm>
#include <cstring>

#include "common/varint.h"

namespace mlnclean {

namespace {

// Packed-image framing. Little-endian fixed-width lengths frame the
// variable parts; the ValueId columns themselves are group-varint coded.
constexpr char kPackedMagic[4] = {'M', 'L', 'N', 'D'};
constexpr uint32_t kPackedVersion = 1;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t base = out->size();
  out->resize(base + sizeof(v));
  std::memcpy(out->data() + base, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t base = out->size();
  out->resize(base + sizeof(v));
  std::memcpy(out->data() + base, &v, sizeof(v));
}

void PutStr(std::vector<uint8_t>* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

// Bounds-checked forward reader over a packed image.
struct PackedReader {
  const uint8_t* p;
  const uint8_t* end;

  size_t remaining() const { return static_cast<size_t>(end - p); }

  bool ReadU32(uint32_t* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    return true;
  }
  bool ReadStr(std::string* s) {
    uint32_t len = 0;
    if (!ReadU32(&len) || remaining() < len) return false;
    s->assign(reinterpret_cast<const char*>(p), len);
    p += len;
    return true;
  }
};

Status PackedError(const std::string& what) {
  return Status::Invalid("packed dataset: " + what);
}

}  // namespace

Result<Dataset> Dataset::Make(Schema schema, std::vector<std::vector<Value>> rows) {
  Dataset ds(std::move(schema));
  ds.Reserve(rows.size());
  for (auto& row : rows) {
    MLN_RETURN_NOT_OK(ds.Append(row));
  }
  return ds;
}

Result<Dataset> Dataset::FromCsv(std::string_view text) {
  return FromCsv(text, nullptr);
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path) {
  return FromCsvFile(path, nullptr);
}

Result<Dataset> Dataset::FromCsv(std::string_view text, QuarantineReport* quarantine) {
  MLN_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text, quarantine));
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(table.header)));
  return Make(std::move(schema), std::move(table.rows));
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path,
                                     QuarantineReport* quarantine) {
  MLN_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, quarantine));
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(table.header)));
  return Make(std::move(schema), std::move(table.rows));
}

Dataset Dataset::EmptyLike(const Dataset& other) {
  Dataset ds(other.schema_);
  ds.dicts_ = other.dicts_;
  return ds;
}

std::vector<Value> Dataset::row(TupleId tid) const {
  std::vector<Value> out;
  out.reserve(num_attrs());
  for (size_t a = 0; a < cols_.size(); ++a) {
    out.push_back(dicts_[a].value(cols_[a][static_cast<size_t>(tid)]));
  }
  return out;
}

Status Dataset::Append(const std::vector<Value>& row) {
  if (row.size() != schema_.num_attrs()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) +
                           " does not match schema arity " +
                           std::to_string(schema_.num_attrs()));
  }
  for (size_t a = 0; a < row.size(); ++a) {
    cols_[a].push_back(dicts_[a].Intern(row[a]));
  }
  ++num_rows_;
  return Status::OK();
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : cols_) col.reserve(rows);
}

void Dataset::AppendRowFrom(const Dataset& src, TupleId tid) {
  for (size_t a = 0; a < cols_.size(); ++a) {
    cols_[a].push_back(src.cols_[a][static_cast<size_t>(tid)]);
  }
  ++num_rows_;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  Dataset out = EmptyLike(*this);
  end = std::min(end, num_rows_);
  if (begin >= end) return out;
  out.Reserve(end - begin);
  for (size_t t = begin; t < end; ++t) {
    out.AppendRowFrom(*this, static_cast<TupleId>(t));
  }
  return out;
}

std::vector<Dataset> SplitIntoBatches(const Dataset& data, size_t k) {
  std::vector<Dataset> batches;
  if (k == 0) return batches;
  const size_t rows = data.num_rows();
  const size_t chunk = (rows + k - 1) / k;
  for (size_t begin = 0; begin < rows; begin += chunk) {
    batches.push_back(data.Slice(begin, begin + chunk));
  }
  return batches;
}

CsvTable Dataset::ToCsv() const {
  CsvTable table;
  table.header = schema_.names();
  table.rows.reserve(num_rows_);
  for (TupleId tid = 0; tid < static_cast<TupleId>(num_rows_); ++tid) {
    table.rows.push_back(row(tid));
  }
  return table;
}

uint64_t HashRowIds(const Dataset& data, TupleId tid) {
  uint64_t h = kValueIdHashSeed;
  for (AttrId a = 0; a < static_cast<AttrId>(data.num_attrs()); ++a) {
    h = MixValueIdHash(h, data.id_at(tid, a));
  }
  return h;
}

uint64_t HashRowIds(const Dataset& data, TupleId tid,
                    const std::vector<AttrId>& attrs) {
  uint64_t h = kValueIdHashSeed;
  for (AttrId a : attrs) h = MixValueIdHash(h, data.id_at(tid, a));
  return h;
}

bool SameRowIds(const Dataset& data, TupleId a, TupleId b) {
  for (AttrId attr = 0; attr < static_cast<AttrId>(data.num_attrs()); ++attr) {
    if (data.id_at(a, attr) != data.id_at(b, attr)) return false;
  }
  return true;
}

bool SameRowIds(const Dataset& data, TupleId a, TupleId b,
                const std::vector<AttrId>& attrs) {
  for (AttrId attr : attrs) {
    if (data.id_at(a, attr) != data.id_at(b, attr)) return false;
  }
  return true;
}

std::vector<uint8_t> Dataset::EncodePacked() const {
  std::vector<uint8_t> out;
  out.insert(out.end(), kPackedMagic, kPackedMagic + sizeof(kPackedMagic));
  PutU32(&out, kPackedVersion);
  PutU32(&out, static_cast<uint32_t>(schema_.num_attrs()));
  for (const std::string& name : schema_.names()) PutStr(&out, name);
  PutU64(&out, num_rows_);
  for (const ValueDict& dict : dicts_) {
    PutU64(&out, dict.size());
    PutU64(&out, dict.null_rank());
    // Id 0 is always NULL; only the non-null values need their bytes.
    for (ValueId id = 1; id < static_cast<ValueId>(dict.size()); ++id) {
      PutStr(&out, dict.value(id));
    }
  }
  for (const std::vector<ValueId>& col : cols_) {
    const size_t header = out.size();
    PutU64(&out, 0);  // patched with the packed byte count below
    const size_t base = out.size();
    out.resize(base + GroupVarintMaxSize(col.size()));
    const size_t written =
        GroupVarintEncodeDelta(col.data(), col.size(), out.data() + base);
    out.resize(base + written);
    const uint64_t packed = written;
    std::memcpy(out.data() + header, &packed, sizeof(packed));
  }
  return out;
}

Result<Dataset> Dataset::DecodePacked(const std::vector<uint8_t>& bytes) {
  return DecodePacked(bytes.data(), bytes.size());
}

Result<Dataset> Dataset::DecodePacked(const uint8_t* data, size_t size) {
  PackedReader r{data, data + size};
  if (r.remaining() < sizeof(kPackedMagic) ||
      std::memcmp(r.p, kPackedMagic, sizeof(kPackedMagic)) != 0) {
    return PackedError("bad magic");
  }
  r.p += sizeof(kPackedMagic);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) return PackedError("truncated header");
  if (version != kPackedVersion) {
    return PackedError("unsupported version " + std::to_string(version));
  }
  uint32_t num_attrs = 0;
  if (!r.ReadU32(&num_attrs)) return PackedError("truncated header");
  // Each name costs at least its 4-byte length prefix.
  if (num_attrs > r.remaining() / 4) return PackedError("implausible attr count");
  std::vector<std::string> names(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    if (!r.ReadStr(&names[a])) return PackedError("truncated schema");
  }
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(names)));
  uint64_t num_rows = 0;
  if (!r.ReadU64(&num_rows)) return PackedError("truncated header");

  Dataset ds(std::move(schema));
  for (uint32_t a = 0; a < num_attrs; ++a) {
    uint64_t dict_size = 0, null_rank = 0;
    if (!r.ReadU64(&dict_size) || !r.ReadU64(&null_rank)) {
      return PackedError("truncated dictionary header");
    }
    if (dict_size == 0 || dict_size > r.remaining() + 1) {
      // Every non-null value costs at least its 4-byte length prefix, so a
      // size beyond the remaining bytes can only be garbage.
      return PackedError("implausible dictionary size");
    }
    ValueDict& dict = ds.dicts_[a];
    std::string value;
    for (uint64_t id = 1; id < dict_size; ++id) {
      if (!r.ReadStr(&value)) return PackedError("truncated dictionary value");
      if (dict.Intern(value) != static_cast<ValueId>(id)) {
        return PackedError("dictionary values not distinct in id order");
      }
    }
    if (null_rank != ValueDict::kNoNullRank && null_rank > dict_size - 1) {
      return PackedError("null rank out of range");
    }
    dict.RestoreNullRank(null_rank);
  }
  for (uint32_t a = 0; a < num_attrs; ++a) {
    uint64_t packed = 0;
    if (!r.ReadU64(&packed) || packed > r.remaining()) {
      return PackedError("truncated column");
    }
    // A group of four ids costs at least one control byte, so a row count
    // past 4x the packed bytes is garbage — checked before the resize so a
    // forged count can never force a huge allocation.
    if (num_rows > 0 && packed < (num_rows + 3) / 4) {
      return PackedError("implausible row count");
    }
    std::vector<ValueId>& col = ds.cols_[a];
    col.resize(num_rows);
    size_t consumed = 0;
    if (!GroupVarintDecodeDelta(r.p, static_cast<size_t>(packed), num_rows,
                                col.data(), &consumed) ||
        consumed != packed) {
      return PackedError("column varint stream malformed");
    }
    r.p += packed;
    const ValueId limit = static_cast<ValueId>(ds.dicts_[a].size());
    for (ValueId id : col) {
      if (id >= limit) return PackedError("column id out of dictionary range");
    }
  }
  if (r.remaining() != 0) return PackedError("trailing bytes");
  ds.num_rows_ = num_rows;
  return ds;
}

bool Dataset::operator==(const Dataset& other) const {
  if (!(schema_ == other.schema_) || num_rows_ != other.num_rows_) return false;
  for (size_t a = 0; a < cols_.size(); ++a) {
    const auto& ca = cols_[a];
    const auto& cb = other.cols_[a];
    // Ids translate across the operands via each side's dictionary; the
    // string compare runs once per id pair change, not once per cell.
    ValueId prev_a = kInvalidValueId, prev_b = kInvalidValueId;
    bool prev_equal = false;
    for (size_t r = 0; r < ca.size(); ++r) {
      if (ca[r] != prev_a || cb[r] != prev_b) {
        prev_a = ca[r];
        prev_b = cb[r];
        prev_equal = dicts_[a].value(prev_a) == other.dicts_[a].value(prev_b);
      }
      if (!prev_equal) return false;
    }
  }
  return true;
}

}  // namespace mlnclean
