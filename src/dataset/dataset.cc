#include "dataset/dataset.h"

#include <algorithm>

namespace mlnclean {

Result<Dataset> Dataset::Make(Schema schema, std::vector<std::vector<Value>> rows) {
  Dataset ds(std::move(schema));
  ds.Reserve(rows.size());
  for (auto& row : rows) {
    MLN_RETURN_NOT_OK(ds.Append(row));
  }
  return ds;
}

Result<Dataset> Dataset::FromCsv(std::string_view text) {
  return FromCsv(text, nullptr);
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path) {
  return FromCsvFile(path, nullptr);
}

Result<Dataset> Dataset::FromCsv(std::string_view text, QuarantineReport* quarantine) {
  MLN_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text, quarantine));
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(table.header)));
  return Make(std::move(schema), std::move(table.rows));
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path,
                                     QuarantineReport* quarantine) {
  MLN_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, quarantine));
  MLN_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(table.header)));
  return Make(std::move(schema), std::move(table.rows));
}

Dataset Dataset::EmptyLike(const Dataset& other) {
  Dataset ds(other.schema_);
  ds.dicts_ = other.dicts_;
  return ds;
}

std::vector<Value> Dataset::row(TupleId tid) const {
  std::vector<Value> out;
  out.reserve(num_attrs());
  for (size_t a = 0; a < cols_.size(); ++a) {
    out.push_back(dicts_[a].value(cols_[a][static_cast<size_t>(tid)]));
  }
  return out;
}

Status Dataset::Append(const std::vector<Value>& row) {
  if (row.size() != schema_.num_attrs()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) +
                           " does not match schema arity " +
                           std::to_string(schema_.num_attrs()));
  }
  for (size_t a = 0; a < row.size(); ++a) {
    cols_[a].push_back(dicts_[a].Intern(row[a]));
  }
  ++num_rows_;
  return Status::OK();
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : cols_) col.reserve(rows);
}

void Dataset::AppendRowFrom(const Dataset& src, TupleId tid) {
  for (size_t a = 0; a < cols_.size(); ++a) {
    cols_[a].push_back(src.cols_[a][static_cast<size_t>(tid)]);
  }
  ++num_rows_;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  Dataset out = EmptyLike(*this);
  end = std::min(end, num_rows_);
  if (begin >= end) return out;
  out.Reserve(end - begin);
  for (size_t t = begin; t < end; ++t) {
    out.AppendRowFrom(*this, static_cast<TupleId>(t));
  }
  return out;
}

std::vector<Dataset> SplitIntoBatches(const Dataset& data, size_t k) {
  std::vector<Dataset> batches;
  if (k == 0) return batches;
  const size_t rows = data.num_rows();
  const size_t chunk = (rows + k - 1) / k;
  for (size_t begin = 0; begin < rows; begin += chunk) {
    batches.push_back(data.Slice(begin, begin + chunk));
  }
  return batches;
}

CsvTable Dataset::ToCsv() const {
  CsvTable table;
  table.header = schema_.names();
  table.rows.reserve(num_rows_);
  for (TupleId tid = 0; tid < static_cast<TupleId>(num_rows_); ++tid) {
    table.rows.push_back(row(tid));
  }
  return table;
}

uint64_t HashRowIds(const Dataset& data, TupleId tid) {
  uint64_t h = kValueIdHashSeed;
  for (AttrId a = 0; a < static_cast<AttrId>(data.num_attrs()); ++a) {
    h = MixValueIdHash(h, data.id_at(tid, a));
  }
  return h;
}

uint64_t HashRowIds(const Dataset& data, TupleId tid,
                    const std::vector<AttrId>& attrs) {
  uint64_t h = kValueIdHashSeed;
  for (AttrId a : attrs) h = MixValueIdHash(h, data.id_at(tid, a));
  return h;
}

bool SameRowIds(const Dataset& data, TupleId a, TupleId b) {
  for (AttrId attr = 0; attr < static_cast<AttrId>(data.num_attrs()); ++attr) {
    if (data.id_at(a, attr) != data.id_at(b, attr)) return false;
  }
  return true;
}

bool SameRowIds(const Dataset& data, TupleId a, TupleId b,
                const std::vector<AttrId>& attrs) {
  for (AttrId attr : attrs) {
    if (data.id_at(a, attr) != data.id_at(b, attr)) return false;
  }
  return true;
}

bool Dataset::operator==(const Dataset& other) const {
  if (!(schema_ == other.schema_) || num_rows_ != other.num_rows_) return false;
  for (size_t a = 0; a < cols_.size(); ++a) {
    const auto& ca = cols_[a];
    const auto& cb = other.cols_[a];
    // Ids translate across the operands via each side's dictionary; the
    // string compare runs once per id pair change, not once per cell.
    ValueId prev_a = kInvalidValueId, prev_b = kInvalidValueId;
    bool prev_equal = false;
    for (size_t r = 0; r < ca.size(); ++r) {
      if (ca[r] != prev_a || cb[r] != prev_b) {
        prev_a = ca[r];
        prev_b = cb[r];
        prev_equal = dicts_[a].value(prev_a) == other.dicts_[a].value(prev_b);
      }
      if (!prev_equal) return false;
    }
  }
  return true;
}

}  // namespace mlnclean
