// Dataset: a string-typed relational table, the unit of work for cleaning.
// Data-cleaning literature (and this paper) treats all cell values as
// strings; typed interpretation happens inside rules where needed.

#ifndef MLNCLEAN_DATASET_DATASET_H_
#define MLNCLEAN_DATASET_DATASET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/result.h"
#include "dataset/schema.h"

namespace mlnclean {

/// Stable identifier of a tuple (its position in the originating dataset).
using TupleId = int;

/// A cell value. Empty string represents NULL.
using Value = std::string;

/// Row-major relational table with a fixed schema.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  /// Builds a dataset, validating row arity against the schema.
  static Result<Dataset> Make(Schema schema, std::vector<std::vector<Value>> rows);

  /// Loads a dataset from CSV (header row = schema).
  static Result<Dataset> FromCsv(std::string_view text);
  static Result<Dataset> FromCsvFile(const std::string& path);

  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  size_t num_attrs() const { return schema_.num_attrs(); }
  /// Total number of attribute values (rows x attrs), the paper's
  /// denominator for the error rate.
  size_t num_cells() const { return num_rows() * num_attrs(); }

  const std::vector<Value>& row(TupleId tid) const {
    return rows_[static_cast<size_t>(tid)];
  }

  const Value& at(TupleId tid, AttrId attr) const {
    return rows_[static_cast<size_t>(tid)][static_cast<size_t>(attr)];
  }

  void set(TupleId tid, AttrId attr, Value v) {
    rows_[static_cast<size_t>(tid)][static_cast<size_t>(attr)] = std::move(v);
  }

  /// Appends a row; arity must match the schema.
  Status Append(std::vector<Value> row);

  /// Distinct values of `attr`, in first-appearance order.
  std::vector<Value> Domain(AttrId attr) const;

  /// Serializes to CSV.
  CsvTable ToCsv() const;

  /// Deep-copies the table (used to keep the dirty original while cleaning).
  Dataset Clone() const { return *this; }

  bool operator==(const Dataset& other) const {
    return schema_ == other.schema_ && rows_ == other.rows_;
  }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace mlnclean

#endif  // MLNCLEAN_DATASET_DATASET_H_
