// Dataset: a string-typed relational table, the unit of work for cleaning.
// Data-cleaning literature (and this paper) treats all cell values as
// strings; typed interpretation happens inside rules where needed.
//
// Storage is columnar and dictionary-encoded: one ValueDict per attribute
// (string <-> dense ValueId, NULL = id 0) plus one vector<ValueId> column
// per attribute. The string-facing facade (at/set/row/Domain/CSV) is
// unchanged for callers, while the hot layers — grounding, AGP/RSC
// distance scans, FSCR fusion, dedup, partitioning — work on the id API:
// within one dictionary, id equality is value equality, and an id pair is
// a perfect memo key for symmetric distances. Two datasets share an id
// universe when one was created from the other via Clone()/EmptyLike()
// (the clone's dictionaries extend the original's, so original ids stay
// valid in the clone).
//
// Thread-safety: concurrent reads are safe. set_id() on distinct cells is
// safe from multiple threads (it only writes a column slot); set() and
// Append/InternValue may grow a dictionary and must not race with anything.

#ifndef MLNCLEAN_DATASET_DATASET_H_
#define MLNCLEAN_DATASET_DATASET_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/csv.h"
#include "common/result.h"
#include "dataset/schema.h"
#include "dataset/value_dict.h"

namespace mlnclean {

/// Stable identifier of a tuple (its position in the originating dataset).
using TupleId = int;

/// Columnar, dictionary-encoded relational table with a fixed schema.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema)
      : schema_(std::move(schema)),
        dicts_(schema_.num_attrs()),
        cols_(schema_.num_attrs()) {}

  /// Builds a dataset, validating row arity against the schema.
  static Result<Dataset> Make(Schema schema, std::vector<std::vector<Value>> rows);

  /// Loads a dataset from CSV (header row = schema).
  static Result<Dataset> FromCsv(std::string_view text);
  static Result<Dataset> FromCsvFile(const std::string& path);

  /// Quarantining loads: malformed data rows are recorded in `quarantine`
  /// (1-based row numbers + reasons) and skipped instead of failing the
  /// whole batch; a broken header still fails. nullptr = strict.
  static Result<Dataset> FromCsv(std::string_view text, QuarantineReport* quarantine);
  static Result<Dataset> FromCsvFile(const std::string& path,
                                     QuarantineReport* quarantine);

  /// An empty dataset sharing `other`'s schema and dictionaries: ids of
  /// `other` remain valid here, so rows can be copied by id. This is how
  /// the distributed partitioner ships dictionaries with shards.
  static Dataset EmptyLike(const Dataset& other);

  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return num_rows_; }
  size_t num_attrs() const { return schema_.num_attrs(); }
  /// Total number of attribute values (rows x attrs), the paper's
  /// denominator for the error rate.
  size_t num_cells() const { return num_rows() * num_attrs(); }

  // ---- string facade -----------------------------------------------------

  /// Materializes a row as strings (facade over the columns).
  std::vector<Value> row(TupleId tid) const;

  const Value& at(TupleId tid, AttrId attr) const {
    const size_t a = static_cast<size_t>(attr);
    return dicts_[a].value(cols_[a][static_cast<size_t>(tid)]);
  }

  /// Sets a cell, interning novel values into the attribute's dictionary.
  /// Not safe to call concurrently with anything; use set_id for parallel
  /// writes of already-interned values.
  void set(TupleId tid, AttrId attr, const Value& v) {
    const size_t a = static_cast<size_t>(attr);
    cols_[a][static_cast<size_t>(tid)] = dicts_[a].Intern(v);
  }

  /// Appends a row; arity must match the schema.
  Status Append(const std::vector<Value>& row);

  /// Pre-allocates column capacity for `rows` rows.
  void Reserve(size_t rows);

  /// Distinct values of `attr` in first-appearance order, O(|dictionary|)
  /// straight off the dictionary. The domain is the dictionary's history,
  /// not a scan of the current cells: values overwritten by set() — and
  /// values interned via InternValue without ever being written to a
  /// cell — remain part of it (the dictionary never forgets a value).
  std::vector<Value> Domain(AttrId attr) const {
    return dicts_[static_cast<size_t>(attr)].FirstAppearanceDomain();
  }

  /// Serializes to CSV.
  CsvTable ToCsv() const;

  /// Deep-copies the table. The copy's dictionaries start identical to the
  /// source's, so source ids stay valid in the copy (FSCR writes repairs
  /// into a clone by id for exactly this reason).
  Dataset Clone() const { return *this; }

  /// Content equality: same schema and the same cell values. Dictionary
  /// id assignments may differ between the operands.
  bool operator==(const Dataset& other) const;

  // ---- id API ------------------------------------------------------------

  ValueId id_at(TupleId tid, AttrId attr) const {
    return cols_[static_cast<size_t>(attr)][static_cast<size_t>(tid)];
  }

  /// Writes an already-interned id into a cell. Safe from multiple threads
  /// on distinct cells (no dictionary mutation).
  void set_id(TupleId tid, AttrId attr, ValueId id) {
    cols_[static_cast<size_t>(attr)][static_cast<size_t>(tid)] = id;
  }

  /// Interns `v` into `attr`'s dictionary without touching any cell.
  ValueId InternValue(AttrId attr, std::string_view v) {
    return dicts_[static_cast<size_t>(attr)].Intern(v);
  }

  const ValueDict& dict(AttrId attr) const {
    return dicts_[static_cast<size_t>(attr)];
  }

  const std::vector<ValueId>& column(AttrId attr) const {
    return cols_[static_cast<size_t>(attr)];
  }

  /// Appends row `tid` of `src` by id. `src` must share this dataset's id
  /// universe (this was created from `src` via EmptyLike/Clone and `src`
  /// has not interned past this dataset's dictionaries).
  void AppendRowFrom(const Dataset& src, TupleId tid);

  /// Rows [begin, end) as a new dataset sharing this table's dictionaries
  /// (EmptyLike + AppendRowFrom): the micro-batch/shard slicing primitive
  /// of the serving and distributed paths.
  Dataset Slice(size_t begin, size_t end) const;

  // ---- packed codec (opt-in) ---------------------------------------------

  /// Compact self-contained binary image of the table: schema names, each
  /// attribute's dictionary in id order, and every ValueId column
  /// group-varint compressed (zigzag+delta — dictionary ids are dense and
  /// repeat-heavy, so most cells cost one byte). The decoded dataset is
  /// value-identical AND id-identical to the source (dictionaries are
  /// rebuilt by re-interning in id order, null ranks restored), so packed
  /// images preserve the id universe. Intended for shipping large
  /// datasets between processes / to disk, not as the in-memory layout.
  std::vector<uint8_t> EncodePacked() const;

  /// Strict decode of an EncodePacked image: every length and id is
  /// bounds-checked, malformed input yields kInvalid — never a crash or
  /// over-read.
  static Result<Dataset> DecodePacked(const uint8_t* data, size_t size);
  static Result<Dataset> DecodePacked(const std::vector<uint8_t>& bytes);

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<ValueDict> dicts_;            // one per attribute
  std::vector<std::vector<ValueId>> cols_;  // [attr][row]
};

/// Splits `data` into `k` contiguous micro-batches (ceil-division row
/// chunks) sharing its dictionaries via Slice. The serving round-trip
/// gates compare transcripts produced in different processes, so every
/// process must split identically — one implementation, used by the
/// example, the snapshot CLI, and the tests. k = 0 yields no batches; the
/// last batch may be short.
std::vector<Dataset> SplitIntoBatches(const Dataset& data, size_t k);

/// Order-sensitive hash of a tuple's dictionary ids over `attrs` (or all
/// attributes). Shared by every layer that buckets tuples by id rows —
/// duplicate elimination, violation grouping — with Same*Ids as the exact
/// confirm on hash match. Only comparable within one dataset (or datasets
/// sharing an id universe).
uint64_t HashRowIds(const Dataset& data, TupleId tid);
uint64_t HashRowIds(const Dataset& data, TupleId tid,
                    const std::vector<AttrId>& attrs);

/// Exact id-row equality over `attrs` (or all attributes).
bool SameRowIds(const Dataset& data, TupleId a, TupleId b);
bool SameRowIds(const Dataset& data, TupleId a, TupleId b,
                const std::vector<AttrId>& attrs);

}  // namespace mlnclean

#endif  // MLNCLEAN_DATASET_DATASET_H_
