file(REMOVE_RECURSE
  "CMakeFiles/mlnclean_model.dir/tools/mlnclean_model.cc.o"
  "CMakeFiles/mlnclean_model.dir/tools/mlnclean_model.cc.o.d"
  "mlnclean_model"
  "mlnclean_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlnclean_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
