# Empty compiler generated dependencies file for mlnclean_model.
# This may be replaced when dependencies are built.
