
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/holoclean_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/baseline/holoclean_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/baseline/holoclean_test.cc.o.d"
  "/root/repo/tests/cleaning/agp_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/agp_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/agp_test.cc.o.d"
  "/root/repo/tests/cleaning/dedup_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/dedup_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/dedup_test.cc.o.d"
  "/root/repo/tests/cleaning/engine_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/engine_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/engine_test.cc.o.d"
  "/root/repo/tests/cleaning/fault_injection_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/fault_injection_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/fault_injection_test.cc.o.d"
  "/root/repo/tests/cleaning/fscr_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/fscr_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/fscr_test.cc.o.d"
  "/root/repo/tests/cleaning/model_io_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/model_io_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/model_io_test.cc.o.d"
  "/root/repo/tests/cleaning/options_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/options_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/options_test.cc.o.d"
  "/root/repo/tests/cleaning/pipeline_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/pipeline_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/pipeline_test.cc.o.d"
  "/root/repo/tests/cleaning/rsc_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/rsc_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/rsc_test.cc.o.d"
  "/root/repo/tests/cleaning/server_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/server_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/cleaning/server_test.cc.o.d"
  "/root/repo/tests/common/csv_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/csv_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/csv_test.cc.o.d"
  "/root/repo/tests/common/distance_memo_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/distance_memo_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/distance_memo_test.cc.o.d"
  "/root/repo/tests/common/distance_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/distance_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/distance_test.cc.o.d"
  "/root/repo/tests/common/executor_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/executor_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/executor_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/random_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/random_test.cc.o.d"
  "/root/repo/tests/common/retry_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/retry_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/retry_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/status_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/status_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/string_util_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/string_util_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/common/thread_pool_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/datagen/datagen_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/datagen/datagen_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/datagen/datagen_test.cc.o.d"
  "/root/repo/tests/dataset/dataset_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/dataset/dataset_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/dataset/dataset_test.cc.o.d"
  "/root/repo/tests/dataset/schema_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/dataset/schema_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/dataset/schema_test.cc.o.d"
  "/root/repo/tests/dataset/value_dict_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/dataset/value_dict_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/dataset/value_dict_test.cc.o.d"
  "/root/repo/tests/distributed/distributed_pipeline_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/distributed/distributed_pipeline_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/distributed/distributed_pipeline_test.cc.o.d"
  "/root/repo/tests/distributed/partitioner_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/distributed/partitioner_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/distributed/partitioner_test.cc.o.d"
  "/root/repo/tests/distributed/weight_merge_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/distributed/weight_merge_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/distributed/weight_merge_test.cc.o.d"
  "/root/repo/tests/errorgen/injector_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/errorgen/injector_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/errorgen/injector_test.cc.o.d"
  "/root/repo/tests/eval/component_metrics_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/eval/component_metrics_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/eval/component_metrics_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/eval/metrics_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/eval/metrics_test.cc.o.d"
  "/root/repo/tests/index/mln_index_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/index/mln_index_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/index/mln_index_test.cc.o.d"
  "/root/repo/tests/index/piece_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/index/piece_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/index/piece_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/integration/end_to_end_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/property_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/integration/property_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/integration/property_test.cc.o.d"
  "/root/repo/tests/integration/regression_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/integration/regression_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/integration/regression_test.cc.o.d"
  "/root/repo/tests/mln/ground_rule_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/mln/ground_rule_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/mln/ground_rule_test.cc.o.d"
  "/root/repo/tests/mln/inference_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/mln/inference_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/mln/inference_test.cc.o.d"
  "/root/repo/tests/mln/network_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/mln/network_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/mln/network_test.cc.o.d"
  "/root/repo/tests/mln/weight_learner_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/mln/weight_learner_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/mln/weight_learner_test.cc.o.d"
  "/root/repo/tests/rules/constraint_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/rules/constraint_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/rules/constraint_test.cc.o.d"
  "/root/repo/tests/rules/rule_parser_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/rules/rule_parser_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/rules/rule_parser_test.cc.o.d"
  "/root/repo/tests/rules/violation_test.cc" "CMakeFiles/mlnclean_tests.dir/tests/rules/violation_test.cc.o" "gcc" "CMakeFiles/mlnclean_tests.dir/tests/rules/violation_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-rev/CMakeFiles/mlnclean.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
