# Empty dependencies file for mlnclean_tests.
# This may be replaced when dependencies are built.
