
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/holoclean.cc" "CMakeFiles/mlnclean.dir/src/baseline/holoclean.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/baseline/holoclean.cc.o.d"
  "/root/repo/src/cleaning/agp.cc" "CMakeFiles/mlnclean.dir/src/cleaning/agp.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/agp.cc.o.d"
  "/root/repo/src/cleaning/dedup.cc" "CMakeFiles/mlnclean.dir/src/cleaning/dedup.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/dedup.cc.o.d"
  "/root/repo/src/cleaning/engine.cc" "CMakeFiles/mlnclean.dir/src/cleaning/engine.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/engine.cc.o.d"
  "/root/repo/src/cleaning/fscr.cc" "CMakeFiles/mlnclean.dir/src/cleaning/fscr.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/fscr.cc.o.d"
  "/root/repo/src/cleaning/model_io.cc" "CMakeFiles/mlnclean.dir/src/cleaning/model_io.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/model_io.cc.o.d"
  "/root/repo/src/cleaning/options.cc" "CMakeFiles/mlnclean.dir/src/cleaning/options.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/options.cc.o.d"
  "/root/repo/src/cleaning/report.cc" "CMakeFiles/mlnclean.dir/src/cleaning/report.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/report.cc.o.d"
  "/root/repo/src/cleaning/rsc.cc" "CMakeFiles/mlnclean.dir/src/cleaning/rsc.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/rsc.cc.o.d"
  "/root/repo/src/cleaning/server.cc" "CMakeFiles/mlnclean.dir/src/cleaning/server.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/cleaning/server.cc.o.d"
  "/root/repo/src/common/csv.cc" "CMakeFiles/mlnclean.dir/src/common/csv.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/csv.cc.o.d"
  "/root/repo/src/common/distance.cc" "CMakeFiles/mlnclean.dir/src/common/distance.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/distance.cc.o.d"
  "/root/repo/src/common/distance_memo.cc" "CMakeFiles/mlnclean.dir/src/common/distance_memo.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/distance_memo.cc.o.d"
  "/root/repo/src/common/executor.cc" "CMakeFiles/mlnclean.dir/src/common/executor.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/executor.cc.o.d"
  "/root/repo/src/common/failpoint.cc" "CMakeFiles/mlnclean.dir/src/common/failpoint.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/failpoint.cc.o.d"
  "/root/repo/src/common/random.cc" "CMakeFiles/mlnclean.dir/src/common/random.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/random.cc.o.d"
  "/root/repo/src/common/retry.cc" "CMakeFiles/mlnclean.dir/src/common/retry.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/retry.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/mlnclean.dir/src/common/status.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "CMakeFiles/mlnclean.dir/src/common/string_util.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/mlnclean.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/datagen/car.cc" "CMakeFiles/mlnclean.dir/src/datagen/car.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/datagen/car.cc.o.d"
  "/root/repo/src/datagen/hospital.cc" "CMakeFiles/mlnclean.dir/src/datagen/hospital.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/datagen/hospital.cc.o.d"
  "/root/repo/src/datagen/sample.cc" "CMakeFiles/mlnclean.dir/src/datagen/sample.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/datagen/sample.cc.o.d"
  "/root/repo/src/datagen/tpch.cc" "CMakeFiles/mlnclean.dir/src/datagen/tpch.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/datagen/tpch.cc.o.d"
  "/root/repo/src/dataset/dataset.cc" "CMakeFiles/mlnclean.dir/src/dataset/dataset.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/dataset/dataset.cc.o.d"
  "/root/repo/src/dataset/schema.cc" "CMakeFiles/mlnclean.dir/src/dataset/schema.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/dataset/schema.cc.o.d"
  "/root/repo/src/dataset/value_dict.cc" "CMakeFiles/mlnclean.dir/src/dataset/value_dict.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/dataset/value_dict.cc.o.d"
  "/root/repo/src/distributed/distributed_pipeline.cc" "CMakeFiles/mlnclean.dir/src/distributed/distributed_pipeline.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/distributed/distributed_pipeline.cc.o.d"
  "/root/repo/src/distributed/partitioner.cc" "CMakeFiles/mlnclean.dir/src/distributed/partitioner.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/distributed/partitioner.cc.o.d"
  "/root/repo/src/errorgen/injector.cc" "CMakeFiles/mlnclean.dir/src/errorgen/injector.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/errorgen/injector.cc.o.d"
  "/root/repo/src/eval/component_metrics.cc" "CMakeFiles/mlnclean.dir/src/eval/component_metrics.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/eval/component_metrics.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "CMakeFiles/mlnclean.dir/src/eval/metrics.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/eval/metrics.cc.o.d"
  "/root/repo/src/index/mln_index.cc" "CMakeFiles/mlnclean.dir/src/index/mln_index.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/index/mln_index.cc.o.d"
  "/root/repo/src/index/piece.cc" "CMakeFiles/mlnclean.dir/src/index/piece.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/index/piece.cc.o.d"
  "/root/repo/src/index/weight_merge.cc" "CMakeFiles/mlnclean.dir/src/index/weight_merge.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/index/weight_merge.cc.o.d"
  "/root/repo/src/mln/gibbs.cc" "CMakeFiles/mlnclean.dir/src/mln/gibbs.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/mln/gibbs.cc.o.d"
  "/root/repo/src/mln/ground_rule.cc" "CMakeFiles/mlnclean.dir/src/mln/ground_rule.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/mln/ground_rule.cc.o.d"
  "/root/repo/src/mln/network.cc" "CMakeFiles/mlnclean.dir/src/mln/network.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/mln/network.cc.o.d"
  "/root/repo/src/mln/walksat.cc" "CMakeFiles/mlnclean.dir/src/mln/walksat.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/mln/walksat.cc.o.d"
  "/root/repo/src/mln/weight_learner.cc" "CMakeFiles/mlnclean.dir/src/mln/weight_learner.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/mln/weight_learner.cc.o.d"
  "/root/repo/src/rules/constraint.cc" "CMakeFiles/mlnclean.dir/src/rules/constraint.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/rules/constraint.cc.o.d"
  "/root/repo/src/rules/rule_parser.cc" "CMakeFiles/mlnclean.dir/src/rules/rule_parser.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/rules/rule_parser.cc.o.d"
  "/root/repo/src/rules/violation.cc" "CMakeFiles/mlnclean.dir/src/rules/violation.cc.o" "gcc" "CMakeFiles/mlnclean.dir/src/rules/violation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
