file(REMOVE_RECURSE
  "libmlnclean.a"
)
