# Empty dependencies file for mlnclean.
# This may be replaced when dependencies are built.
