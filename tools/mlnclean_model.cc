// mlnclean_model: save / load / inspect / serve CleanModel snapshots from
// the command line — the cross-process half of the serving story and the
// binary CI's snapshot-roundtrip job drives.
//
//   # compile (+warm) a model over the deterministic hospital workload and
//   # snapshot it
//   mlnclean_model save --out model.bin --warm
//
//   # print a snapshot's schema, rules, options, and weight-store summary
//   mlnclean_model inspect model.bin
//
//   # serve the workload's micro-batches through a loaded snapshot ...
//   mlnclean_model serve --model model.bin --batches 8 --reuse --out serve.txt
//
//   # ... concurrently, through a CleanServer on a 4-worker pool; the
//   # transcript stays ordered by batch index and byte-identical to the
//   # sequential run (the concurrent-serving CI gate)
//   mlnclean_model serve --model model.bin --batches 8 --jobs 4 --reuse --out serve.txt
//
//   # ... or sharded through a CleanFleet (router built from the seeded
//   # workload and round-tripped through its wire image before serving);
//   # --shards 1 is byte-identical to the plain serve transcript, and
//   # --stats appends a latency/counter footer (never used by cmp gates)
//   mlnclean_model serve --model model.bin --batches 8 --shards 3 --jobs 4 --out serve.txt
//
//   # ... or through an in-process compile (the reference arm; pass
//   # --warm iff the snapshot was saved with --warm)
//   mlnclean_model serve --compile --warm --batches 8 --reuse --out serve.txt
//
//   # stream the batches through ONE row-incremental session (each entry
//   # covers the accumulated rows), snapshotting the base index mid-stream
//   mlnclean_model serve --compile --incremental --batches 6 --limit 3 \
//                        --save-index idx.bin --out first.txt
//
//   # ... then resume cross-process from the snapshot and append the rest;
//   # cat first.txt rest.txt equals the cold --cumulative reference
//   mlnclean_model serve --resume-index idx.bin --skip 3 --batches 6 --out rest.txt
//   mlnclean_model serve --compile --cumulative --batches 6 --out cold.txt
//
// The serve output file is fully deterministic (cleaned + deduped CSV and
// the decision-trace counts per batch; no timings), so `cmp` between the
// --model and --compile arms is the round-trip gate: a loaded model must
// serve bit-identically to the in-process original.
//
// The workload is generated, not read from disk: MakeHospitalWorkload +
// InjectErrors are seeded, so two processes given the same flags see the
// same bytes. --data/--rules switch to a CSV file and rule DSL file
// instead.

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "mlnclean/mlnclean.h"

using namespace mlnclean;

namespace {

struct Args {
  std::string command;
  std::string model_path;   // serve --model / inspect positional
  std::string out_path;     // save --out / serve --out
  std::string data_path;    // optional CSV workload
  std::string rules_path;   // optional rule DSL file
  size_t hospitals = 40;
  size_t measures = 10;
  double error_rate = 0.05;
  uint64_t seed = 21;
  size_t batches = 8;
  size_t jobs = 1;  // serve: concurrent sessions via CleanServer when > 1
  size_t shards = 0;  // serve: fan batches across a CleanFleet when > 0
  bool stats = false;  // serve: append the stats footer to the transcript
  size_t agp_threshold = 3;
  bool agp_threshold_set = false;
  bool warm = false;     // save: warm the store on batch 0 before saving
  bool compile = false;  // serve: in-process reference arm
  bool reuse = false;    // serve: reuse_model_weights
  bool retry = false;    // serve: SubmitWithRetry through a CleanServer
  bool incremental = false;  // serve: one row-incremental session
  bool cumulative = false;   // serve: cold prefix runs (the reference arm)
  size_t limit = 0;          // serve: stop after batch `limit` (0 = all)
  size_t skip = 0;           // serve: first batch to emit (resume/cumulative)
  std::string save_index_path;    // serve --incremental: snapshot with index
  std::string resume_index_path;  // serve: resume from a saved index
  std::string failpoint;  // arm this failpoint (Once) before the command
  // discover knobs; defaults mirror DiscoveryOptions.
  size_t threads = 1;
  size_t max_lhs = DiscoveryOptions().max_lhs;
  double min_support = DiscoveryOptions().min_support;
  double min_confidence = DiscoveryOptions().min_confidence;
  bool eval = false;  // discover: clean with mined vs hand-written rules
};

// Strict numeric flag parsing: the whole token must be a non-negative
// decimal number (std::stoul would wrap "-1" to huge and accept "8x").
bool ParseU64Flag(const char* v, uint64_t* out) {
  if (v == nullptr || *v == '\0' || *v == '-' || *v == '+') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (errno != 0 || end == v || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseSizeFlag(const char* v, size_t* out) {
  uint64_t parsed = 0;
  if (!ParseU64Flag(v, &parsed) || parsed > std::numeric_limits<size_t>::max()) {
    return false;
  }
  *out = static_cast<size_t>(parsed);
  return true;
}

bool ParseRateFlag(const char* v, double* out) {
  if (v == nullptr || *v == '\0') return false;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  // strtod happily parses "nan"/"inf"; a rate must be a finite fraction.
  if (errno != 0 || end == v || *end != '\0' || !std::isfinite(parsed) ||
      parsed < 0.0 || parsed > 1.0) {
    return false;
  }
  *out = parsed;
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  mlnclean_model save --out FILE [--warm] [workload flags]\n"
               "  mlnclean_model inspect FILE\n"
               "  mlnclean_model serve (--model FILE | --compile [--warm])\n"
               "                       --out FILE [--reuse] [--batches K]\n"
               "                       [--jobs N] [--shards N] [--retry]\n"
               "                       [--stats] [workload flags]\n"
               "                       [--incremental [--save-index FILE]]\n"
               "                       [--cumulative] [--limit K] [--skip K]\n"
               "  mlnclean_model serve --resume-index FILE --skip K --out FILE\n"
               "                       [--batches K] [--limit K] [workload flags]\n"
               "  mlnclean_model discover --out FILE [--threads N] [--eval]\n"
               "                       [--max-lhs K] [--min-support R]\n"
               "                       [--min-confidence R] [workload flags]\n"
               "workload flags: --hospitals N --measures N --error-rate R --seed S\n"
               "                --agp-threshold T | --data CSV --rules FILE\n"
               "fault injection (fault builds only): --failpoint SITE arms SITE\n"
               "                to fire once before the command runs\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--warm") {
      args->warm = true;
    } else if (flag == "--compile") {
      args->compile = true;
    } else if (flag == "--reuse") {
      args->reuse = true;
    } else if (flag == "--retry") {
      args->retry = true;
    } else if (flag == "--incremental") {
      args->incremental = true;
    } else if (flag == "--cumulative") {
      args->cumulative = true;
    } else if (flag == "--save-index") {
      const char* v = next();
      if (v == nullptr) return false;
      args->save_index_path = v;
    } else if (flag == "--resume-index") {
      const char* v = next();
      if (v == nullptr) return false;
      args->resume_index_path = v;
    } else if (flag == "--stats") {
      args->stats = true;
    } else if (flag == "--eval") {
      args->eval = true;
    } else if (flag == "--failpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      args->failpoint = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_path = v;
    } else if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args->model_path = v;
    } else if (flag == "--data") {
      const char* v = next();
      if (v == nullptr) return false;
      args->data_path = v;
    } else if (flag == "--rules") {
      const char* v = next();
      if (v == nullptr) return false;
      args->rules_path = v;
    } else if (flag == "--hospitals" || flag == "--measures" || flag == "--batches" ||
               flag == "--jobs" || flag == "--shards" ||
               flag == "--agp-threshold" || flag == "--seed" ||
               flag == "--error-rate" || flag == "--threads" || flag == "--max-lhs" ||
               flag == "--min-support" || flag == "--min-confidence" ||
               flag == "--limit" || flag == "--skip") {
      const char* v = next();
      if (v == nullptr) return false;
      bool parsed = true;
      if (flag == "--hospitals") parsed = ParseSizeFlag(v, &args->hospitals);
      if (flag == "--measures") parsed = ParseSizeFlag(v, &args->measures);
      if (flag == "--batches") parsed = ParseSizeFlag(v, &args->batches);
      if (flag == "--jobs") parsed = ParseSizeFlag(v, &args->jobs);
      if (flag == "--shards") parsed = ParseSizeFlag(v, &args->shards);
      if (flag == "--agp-threshold") {
        parsed = ParseSizeFlag(v, &args->agp_threshold);
        args->agp_threshold_set = true;
      }
      if (flag == "--seed") parsed = ParseU64Flag(v, &args->seed);
      if (flag == "--error-rate") parsed = ParseRateFlag(v, &args->error_rate);
      if (flag == "--threads") parsed = ParseSizeFlag(v, &args->threads);
      if (flag == "--max-lhs") parsed = ParseSizeFlag(v, &args->max_lhs);
      if (flag == "--min-support") parsed = ParseRateFlag(v, &args->min_support);
      if (flag == "--min-confidence") parsed = ParseRateFlag(v, &args->min_confidence);
      if (flag == "--limit") parsed = ParseSizeFlag(v, &args->limit);
      if (flag == "--skip") parsed = ParseSizeFlag(v, &args->skip);
      if (!parsed) {
        std::fprintf(stderr, "bad value for %s: %s\n", flag.c_str(), v);
        return false;
      }
    } else if (args->command == "inspect" && args->model_path.empty() &&
               flag.rfind("--", 0) != 0) {
      args->model_path = flag;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->batches == 0) {
    std::fprintf(stderr, "--batches must be at least 1\n");
    return false;
  }
  if (args->jobs == 0) {
    std::fprintf(stderr, "--jobs must be at least 1\n");
    return false;
  }
  if (!args->resume_index_path.empty()) {
    // A resume snapshot carries its own model (and options); a second
    // model source would make it ambiguous which one serves.
    if (args->compile || !args->model_path.empty()) {
      std::fprintf(stderr,
                   "--resume-index carries its own model; drop --model/--compile\n");
      return false;
    }
    args->incremental = true;  // resuming only makes sense incrementally
  }
  if (args->shards > 0 &&
      (args->incremental || args->cumulative || args->retry ||
       !args->resume_index_path.empty())) {
    // The fleet serves plain batch submissions only: the incremental lane
    // is single-stream by contract, --cumulative is its cold reference,
    // and SubmitWithRetry is a per-server API.
    std::fprintf(stderr,
                 "--shards serves plain batches through a CleanFleet; drop "
                 "--incremental/--cumulative/--retry/--resume-index\n");
    return false;
  }
  if (args->stats && (args->incremental || args->cumulative)) {
    // The incremental/cumulative arms bypass the server, so there are no
    // queue/latency counters to print.
    std::fprintf(stderr, "--stats needs the server or fleet serve path\n");
    return false;
  }
  if (args->incremental && args->cumulative) {
    std::fprintf(stderr, "--incremental and --cumulative are mutually exclusive\n");
    return false;
  }
  if (!args->save_index_path.empty() && !args->incremental) {
    std::fprintf(stderr, "--save-index requires --incremental\n");
    return false;
  }
  if (args->skip > 0 && args->resume_index_path.empty() && !args->cumulative) {
    // A fresh incremental session that skipped batches would clean a
    // different stream than the one the transcript claims.
    std::fprintf(stderr, "--skip requires --resume-index or --cumulative\n");
    return false;
  }
  if ((!args->save_index_path.empty() || !args->resume_index_path.empty()) &&
      args->jobs > 1) {
    // The server lane owns its session internally; its base index is not
    // reachable for snapshotting.
    std::fprintf(stderr, "--save-index/--resume-index need --jobs 1\n");
    return false;
  }
  if (args->compile && !args->model_path.empty()) {
    // Accepting both and ignoring one would let a miswritten round-trip
    // gate compare two in-process runs and pass without testing the codec.
    std::fprintf(stderr, "--compile and --model are mutually exclusive\n");
    return false;
  }
  if (args->command == "serve" && !args->model_path.empty() &&
      (args->warm || args->agp_threshold_set)) {
    // Compile-time knobs silently ignored against a loaded snapshot (whose
    // options are authoritative) would make a cmp mismatch look like a
    // codec bug; reject loudly instead.
    std::fprintf(stderr,
                 "--warm/--agp-threshold only apply to --compile or save; a "
                 "loaded snapshot's own options are authoritative\n");
    return false;
  }
  if (args->command == "discover" && !args->rules_path.empty()) {
    // Hand-written rules would be silently unused (discovery mines its
    // own); the one place they matter, --eval, regenerates them.
    std::fprintf(stderr, "discover mines its own rules; drop --rules\n");
    return false;
  }
  if (args->command == "discover" && args->eval && !args->data_path.empty()) {
    // --eval scores repairs against ground truth, which only the
    // generated workload has.
    std::fprintf(stderr, "--eval needs the generated workload, not --data\n");
    return false;
  }
  return true;
}

struct ServingWorkload {
  Dataset dirty;
  RuleSet rules;

  ServingWorkload(Dataset dirty_in, RuleSet rules_in)
      : dirty(std::move(dirty_in)), rules(std::move(rules_in)) {}
};

/// The deterministic workload both processes of the round-trip regenerate
/// from flags (or load from --data/--rules).
Result<ServingWorkload> MakeWorkload(const Args& args) {
  if (!args.data_path.empty() || !args.rules_path.empty()) {
    if (args.data_path.empty() || args.rules_path.empty()) {
      return Status::Invalid("--data and --rules must be given together");
    }
    MLN_ASSIGN_OR_RETURN(Dataset data, Dataset::FromCsvFile(args.data_path));
    std::ifstream rf(args.rules_path);
    if (!rf) return Status::IOError("cannot open rules file " + args.rules_path);
    std::stringstream buf;
    buf << rf.rdbuf();
    MLN_ASSIGN_OR_RETURN(RuleSet rules, ParseRules(data.schema(), buf.str()));
    return ServingWorkload(std::move(data), std::move(rules));
  }
  HospitalConfig config;
  config.num_hospitals = args.hospitals;
  config.num_measures = args.measures;
  MLN_ASSIGN_OR_RETURN(Workload wl, MakeHospitalWorkload(config));
  ErrorSpec spec;
  spec.error_rate = args.error_rate;
  spec.seed = args.seed;
  MLN_ASSIGN_OR_RETURN(DirtyDataset dd, InjectErrors(wl.clean, wl.rules, spec));
  return ServingWorkload(std::move(dd.dirty), std::move(wl.rules));
}

Result<CleanModel> CompileAndWarm(const Args& args, const ServingWorkload& wl,
                                  const std::vector<Dataset>& batches) {
  CleaningOptions options;
  options.agp_threshold = args.agp_threshold;
  CleaningEngine engine(options);
  MLN_ASSIGN_OR_RETURN(CleanModel model, engine.Compile(wl.dirty.schema(), wl.rules));
  if (args.warm && !batches.empty()) {
    MLN_RETURN_NOT_OK(model.Warm(batches[0]));
  }
  return model;
}

void WriteBatchTranscript(size_t index, size_t rows, const CleanResult& result,
                          std::ostream& out) {
  const CleaningReport& report = result.report;
  out << "== batch " << index << " rows=" << rows
      << " agp=" << report.agp.size() << " rsc=" << report.rsc.size()
      << " fscr=" << report.fscr.size() << " dups=" << report.duplicates.size()
      << "\n";
  out << "-- cleaned\n" << WriteCsv(result.cleaned.ToCsv());
  out << "-- deduped\n" << WriteCsv(result.deduped.ToCsv());
}

/// The --stats footer: terminal counters and ticket-latency percentiles.
/// Deliberately NOT part of the deterministic transcript (latencies are
/// wall-clock), which is why it only appears behind the flag — the CI cmp
/// legs never pass --stats.
void WriteServerStatsFooter(const ServerStats& stats, std::ostream& out) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "== stats queued=%zu running=%zu submitted=%zu completed=%zu "
                "failed=%zu cancelled=%zu deadline_expired=%zu rejected=%zu "
                "coalesced_groups=%zu coalesced_jobs=%zu\n",
                stats.queued, stats.running, stats.submitted, stats.completed,
                stats.failed, stats.cancelled, stats.deadline_expired,
                stats.rejected, stats.coalesced_groups, stats.coalesced_jobs);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "-- latency samples=%zu p50_ms=%.3f p99_ms=%.3f p999_ms=%.3f\n",
                stats.latency.samples, stats.latency.p50 * 1e3,
                stats.latency.p99 * 1e3, stats.latency.p999 * 1e3);
  out << buf;
}

void WriteFleetStatsFooter(const FleetStats& stats, std::ostream& out) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "== fleet stats submitted=%zu completed=%zu failed=%zu "
                "cancelled=%zu deadline_expired=%zu\n",
                stats.submitted, stats.completed, stats.failed, stats.cancelled,
                stats.deadline_expired);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "-- latency samples=%zu p50_ms=%.3f p99_ms=%.3f p999_ms=%.3f\n",
                stats.latency.samples, stats.latency.p50 * 1e3,
                stats.latency.p99 * 1e3, stats.latency.p999 * 1e3);
  out << buf;
  for (size_t s = 0; s < stats.shards.size(); ++s) {
    const ServerStats& shard = stats.shards[s];
    std::snprintf(buf, sizeof(buf),
                  "-- shard %zu queued=%zu running=%zu submitted=%zu "
                  "completed=%zu failed=%zu p50_ms=%.3f p99_ms=%.3f\n",
                  s, shard.queued, shard.running, shard.submitted,
                  shard.completed, shard.failed, shard.latency.p50 * 1e3,
                  shard.latency.p99 * 1e3);
    out << buf;
  }
}

/// Serves every batch and writes the deterministic transcript: cleaned and
/// deduped CSV plus decision-trace counts per batch, ordered by batch
/// index. No wall-clock times — two runs of the same model over the same
/// batches must be `cmp`-equal. With jobs > 1 the batches run through a
/// CleanServer on a jobs-wide pool; sessions execute concurrently but the
/// tickets are harvested (and the transcript written) in submit order, so
/// the bytes match the sequential run exactly — that equality IS the
/// concurrent-serving gate CI's --jobs leg checks.
Status ServeBatches(const CleanModel& model, const std::vector<Dataset>& batches,
                    bool reuse, size_t jobs, bool retry, bool stats,
                    std::ostream& out) {
  SessionOptions opts;
  opts.reuse_model_weights = reuse;
  // --retry forces the server path even at --jobs 1: SubmitWithRetry is a
  // server API, and the queue is sized for every batch, so the server is
  // uncontended, no retry ever fires, and the transcript is byte-identical
  // to the non-retry run — the determinism gate CI checks. --stats forces
  // it too: the footer's counters live on the server.
  if (jobs <= 1 && !retry && !stats) {
    for (size_t i = 0; i < batches.size(); ++i) {
      CleanSession session = model.NewSession(batches[i], opts);
      MLN_RETURN_NOT_OK(session.Resume());
      MLN_ASSIGN_OR_RETURN(CleanResult result, session.TakeResult());
      WriteBatchTranscript(i, batches[i].num_rows(), result, out);
    }
    return Status::OK();
  }
  PoolExecutor pool(jobs);
  ServerOptions sopts;
  sopts.executor = &pool;
  sopts.max_concurrent_sessions = jobs;
  sopts.queue_capacity = batches.size();
  MLN_ASSIGN_OR_RETURN(CleanServer server, CleanServer::Create(model, sopts));
  std::vector<CleanTicket> tickets;
  tickets.reserve(batches.size());
  for (const Dataset& batch : batches) {
    // Fresh SessionOptions per job: reusing one instance would share its
    // CancelToken, and Cancel() on one ticket would kill every sibling.
    SessionOptions job_opts;
    job_opts.reuse_model_weights = reuse;
    if (retry) {
      MLN_ASSIGN_OR_RETURN(CleanTicket ticket,
                           server.SubmitWithRetry(batch, job_opts));
      tickets.push_back(std::move(ticket));
    } else {
      MLN_ASSIGN_OR_RETURN(CleanTicket ticket, server.Submit(batch, job_opts));
      tickets.push_back(std::move(ticket));
    }
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    MLN_ASSIGN_OR_RETURN(CleanResult result, tickets[i].Take());
    WriteBatchTranscript(i, batches[i].num_rows(), result, out);
  }
  if (stats) WriteServerStatsFooter(server.Stats(), out);
  return Status::OK();
}

/// The fleet arm (`--shards N`): batches fan out across a CleanFleet on a
/// jobs-wide pool. The shard router is built from the workload's dirty
/// table (the seeded draw, so every process builds the same centroids)
/// and then round-tripped through its wire image before serving — the
/// transcript therefore also certifies that a router restored from a
/// snapshot routes exactly like the one that was built. Harvest order is
/// submit order, so the bytes stay deterministic; at --shards 1 they are
/// byte-identical to the plain serve path (the fleet bit-identity
/// contract, which CI cmp-checks cross-process).
Status ServeFleetBatches(const CleanModel& model, const ServingWorkload& wl,
                         const std::vector<Dataset>& batches, const Args& args,
                         std::ostream& out) {
  ShardRouterOptions ropts;
  ropts.num_shards = args.shards;
  MLN_ASSIGN_OR_RETURN(ShardRouter built, ShardRouter::Build(wl.dirty, ropts));
  MLN_ASSIGN_OR_RETURN(ShardRouter router, ShardRouter::Decode(built.Encode()));
  PoolExecutor pool(args.jobs);
  FleetOptions fopts;
  fopts.executor = &pool;
  fopts.max_concurrent_sessions = args.jobs;
  fopts.queue_capacity = batches.size();
  MLN_ASSIGN_OR_RETURN(CleanFleet fleet,
                       CleanFleet::Create(model, std::move(router), fopts));
  std::vector<FleetTicket> tickets;
  tickets.reserve(batches.size());
  for (const Dataset& batch : batches) {
    SessionOptions job_opts;
    job_opts.reuse_model_weights = args.reuse;
    MLN_ASSIGN_OR_RETURN(FleetTicket ticket, fleet.Submit(batch, job_opts));
    tickets.push_back(std::move(ticket));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    MLN_ASSIGN_OR_RETURN(CleanResult result, tickets[i].Take());
    WriteBatchTranscript(i, batches[i].num_rows(), result, out);
  }
  if (args.stats) WriteFleetStatsFooter(fleet.Stats(), out);
  return Status::OK();
}

/// The window of batch indices `serve` emits: [--skip, --limit) clamped to
/// the batch count (limit 0 = all).
std::pair<size_t, size_t> BatchWindow(const Args& args, size_t num_batches) {
  const size_t stop =
      args.limit == 0 ? num_batches : std::min(args.limit, num_batches);
  return {std::min(args.skip, stop), stop};
}

/// The incremental arm: one live row-incremental session, each emitted
/// batch's transcript covering the *accumulated* rows so far. A cmp
/// against the --cumulative reference arm is the streaming bit-identity
/// gate: the incremental entry for batch k must equal a cold run over
/// concat(batch 0..k). With --resume-index the session continues from a
/// saved snapshot (model + base index), rebuilding the already-served rows
/// from the regenerated workload; with --save-index the final base index
/// is snapshotted for a later process to resume from. With --jobs > 1 the
/// batches flow through a CleanServer's incremental lane instead — same
/// transcript bytes, exercising SessionOptions::incremental end to end.
Status ServeIncrementalBatches(const Args& args, const ServingWorkload& wl,
                               const std::vector<Dataset>& batches,
                               std::ostream& out) {
  SessionOptions opts;
  opts.reuse_model_weights = args.reuse;
  const auto [first, stop] = BatchWindow(args, batches.size());

  std::optional<CleanModel> model;
  std::optional<CleanSession> session;
  if (!args.resume_index_path.empty()) {
    MLN_ASSIGN_OR_RETURN(
        LoadedSnapshot snap,
        CleaningEngine().LoadWithIndexFromFile(args.resume_index_path));
    if (!snap.index.has_value()) {
      return Status::Invalid("--resume-index: " + args.resume_index_path +
                             " carries no saved index (save it with "
                             "serve --incremental --save-index)");
    }
    // Rebuild the accumulated rows the saved index covers: the first
    // --skip batches of the regenerated workload, re-appended in order so
    // the dictionaries reproduce the ids the index carries.
    size_t skip_rows = 0;
    for (size_t i = 0; i < args.skip && i < batches.size(); ++i) {
      skip_rows += batches[i].num_rows();
    }
    if (args.skip > batches.size() || skip_rows != snap.indexed_rows) {
      return Status::Invalid(
          "--skip " + std::to_string(args.skip) + " covers " +
          std::to_string(skip_rows) + " rows but the saved index covers " +
          std::to_string(snap.indexed_rows) +
          "; pass the --skip/--batches/workload flags of the saving run");
    }
    Dataset accumulated(snap.model.schema());
    accumulated.Reserve(skip_rows);
    for (size_t i = 0; i < args.skip; ++i) {
      for (size_t t = 0; t < batches[i].num_rows(); ++t) {
        MLN_RETURN_NOT_OK(accumulated.Append(batches[i].row(static_cast<TupleId>(t))));
      }
    }
    model.emplace(std::move(snap.model));
    session.emplace(model->ResumeIncrementalSession(std::move(accumulated),
                                                    std::move(*snap.index), opts));
  } else {
    Result<CleanModel> loaded = [&]() -> Result<CleanModel> {
      if (args.compile) return CompileAndWarm(args, wl, batches);
      std::ifstream in(args.model_path, std::ios::binary);
      if (!in) return Status::IOError("cannot open " + args.model_path);
      return CleaningEngine().Load(in);
    }();
    MLN_RETURN_NOT_OK(loaded.status());
    model.emplace(std::move(*loaded));
    session.emplace(model->NewIncrementalSession(opts));
  }

  if (args.jobs > 1) {
    // The server lane: batches submitted with SessionOptions::incremental
    // append to the server's own live session in submission order, and
    // each ticket resolves to the accumulated output — byte-identical to
    // the direct loop below (the session built above goes unused).
    PoolExecutor pool(args.jobs);
    ServerOptions sopts;
    sopts.executor = &pool;
    sopts.max_concurrent_sessions = args.jobs;
    sopts.queue_capacity = batches.size();
    MLN_ASSIGN_OR_RETURN(CleanServer server, CleanServer::Create(*model, sopts));
    std::vector<CleanTicket> tickets;
    for (size_t i = first; i < stop; ++i) {
      SessionOptions job_opts;
      job_opts.reuse_model_weights = args.reuse;
      job_opts.incremental = true;
      MLN_ASSIGN_OR_RETURN(CleanTicket ticket, server.Submit(batches[i], job_opts));
      tickets.push_back(std::move(ticket));
    }
    for (size_t i = first; i < stop; ++i) {
      MLN_ASSIGN_OR_RETURN(CleanResult result, tickets[i - first].Take());
      WriteBatchTranscript(i, result.cleaned.num_rows(), result, out);
    }
    return Status::OK();
  }

  for (size_t i = first; i < stop; ++i) {
    MLN_RETURN_NOT_OK(session->AppendRows(batches[i]));
    MLN_RETURN_NOT_OK(session->Resume());
    CleanResult result;
    result.cleaned = session->cleaned().Clone();
    result.deduped = session->deduped().Clone();
    result.report = session->report();
    WriteBatchTranscript(i, session->data().num_rows(), result, out);
  }
  if (!args.save_index_path.empty()) {
    MLN_RETURN_NOT_OK(model->SaveToFile(args.save_index_path, session->base_index(),
                                        session->data().num_rows()));
  }
  return Status::OK();
}

/// The cold reference arm for the streaming gate: for every emitted batch
/// k, a fresh cold session over the concatenated prefix (batches 0..k).
/// O(K * rows) work where the incremental arm pays O(rows) — the point of
/// the comparison — but bit-identical transcripts.
Status ServeCumulativeBatches(const CleanModel& model, const Args& args,
                              const ServingWorkload& wl,
                              const std::vector<Dataset>& batches,
                              std::ostream& out) {
  SessionOptions opts;
  opts.reuse_model_weights = args.reuse;
  const auto [first, stop] = BatchWindow(args, batches.size());
  size_t end_row = 0;
  for (size_t i = 0; i < first && i < batches.size(); ++i) {
    end_row += batches[i].num_rows();
  }
  for (size_t i = first; i < stop; ++i) {
    end_row += batches[i].num_rows();
    Dataset prefix = wl.dirty.Slice(0, end_row);
    CleanSession session = model.NewSession(prefix, opts);
    MLN_RETURN_NOT_OK(session.Resume());
    MLN_ASSIGN_OR_RETURN(CleanResult result, session.TakeResult());
    WriteBatchTranscript(i, prefix.num_rows(), result, out);
  }
  return Status::OK();
}

int RunSave(const Args& args) {
  if (args.out_path.empty()) return Usage();
  auto wl = MakeWorkload(args);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::vector<Dataset> batches = SplitIntoBatches(wl->dirty, args.batches);
  auto model = CompileAndWarm(args, *wl, batches);
  if (!model.ok()) {
    std::fprintf(stderr, "compile: %s\n", model.status().ToString().c_str());
    return 1;
  }
  // Crash-safe write: temp file + fsync + atomic rename, so a failure (or
  // an injected --failpoint crash-sim) never leaves a torn snapshot — or
  // clobbers a previous good one — at --out.
  Status saved = model->SaveToFile(args.out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved %s: %zu rules, %zu stored weights\n", args.out_path.c_str(),
              model->rules().size(), model->num_stored_weights());
  return 0;
}

int RunInspect(const Args& args) {
  if (args.model_path.empty()) return Usage();
  std::ifstream in(args.model_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args.model_path.c_str());
    return 1;
  }
  auto info = InspectModelSnapshot(in);
  if (!info.ok()) {
    std::fprintf(stderr, "inspect: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot version %u\n", info->version);
  std::printf("schema (%zu attrs):", info->attr_names.size());
  for (const std::string& name : info->attr_names) std::printf(" %s", name.c_str());
  std::printf("\nrules (%zu):\n", info->rule_texts.size());
  for (size_t i = 0; i < info->rule_texts.size(); ++i) {
    std::printf("  %s (w=%g): %s\n", info->rule_names[i].c_str(),
                info->rule_weights[i], info->rule_texts[i].c_str());
  }
  std::printf("options: agp_threshold=%zu learn_weights=%d num_threads=%zu\n",
              info->options.agp_threshold, info->options.learn_weights ? 1 : 0,
              info->options.num_threads);
  size_t dict_values = 0;
  for (size_t n : info->weight_dict_sizes) dict_values += n;
  std::printf("weight store: %zu γ entries, %zu dicts (%zu interned values)\n",
              info->num_stored_weights, info->weight_dict_sizes.size(), dict_values);
  if (info->has_index) {
    std::printf("index: %zu rows, %zu γ pieces (incremental resume point)\n",
                info->indexed_rows, info->index_pieces);
  } else {
    std::printf("index: none\n");
  }
  return 0;
}

int RunServe(const Args& args) {
  if (args.out_path.empty() ||
      (args.model_path.empty() && !args.compile && args.resume_index_path.empty())) {
    return Usage();
  }
  auto wl = MakeWorkload(args);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
    return 1;
  }
  std::vector<Dataset> batches = SplitIntoBatches(wl->dirty, args.batches);
  if (args.incremental) {
    std::ofstream out(args.out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", args.out_path.c_str());
      return 1;
    }
    Status served = ServeIncrementalBatches(args, *wl, batches, out);
    if (!served.ok()) {
      std::fprintf(stderr, "serve: %s\n", served.ToString().c_str());
      return 1;
    }
    out.close();
    if (out.fail()) {
      std::fprintf(stderr, "serve: write to %s failed\n", args.out_path.c_str());
      return 1;
    }
    const auto [first, stop] = BatchWindow(args, batches.size());
    std::printf("served batches %zu..%zu incrementally (jobs=%zu) -> %s\n", first,
                stop, args.jobs, args.out_path.c_str());
    return 0;
  }
  Result<CleanModel> model = [&]() -> Result<CleanModel> {
    if (args.compile) {
      // The reference arm warms only when asked: pass --warm iff the
      // snapshot under test was saved with --warm, or the two arms serve
      // from different weight stores and the cmp mismatch would falsely
      // implicate the codec.
      return CompileAndWarm(args, *wl, batches);
    }
    std::ifstream in(args.model_path, std::ios::binary);
    if (!in) return Status::IOError("cannot open " + args.model_path);
    return CleaningEngine().Load(in);
  }();
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::ofstream out(args.out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.out_path.c_str());
    return 1;
  }
  Status served =
      args.cumulative
          ? ServeCumulativeBatches(*model, args, *wl, batches, out)
          : (args.shards > 0
                 ? ServeFleetBatches(*model, *wl, batches, args, out)
                 : ServeBatches(*model, batches, args.reuse, args.jobs,
                                args.retry, args.stats, out));
  if (!served.ok()) {
    std::fprintf(stderr, "serve: %s\n", served.ToString().c_str());
    return 1;
  }
  out.close();  // a truncated transcript must fail here, not at the cmp
  if (out.fail()) {
    std::fprintf(stderr, "serve: write to %s failed\n", args.out_path.c_str());
    return 1;
  }
  std::printf("served %zu batches (%s, reuse=%d, jobs=%zu, shards=%zu) -> %s\n",
              batches.size(), args.compile ? "in-process model" : "loaded snapshot",
              args.reuse ? 1 : 0, args.jobs, args.shards, args.out_path.c_str());
  return 0;
}

/// Writes the mined-rule transcript: candidate measures, matching
/// dependencies, and the kept rules as parseable canonical DSL. Fully
/// deterministic — fixed-precision measures, no timings, and no thread
/// count — so `cmp` between a --threads 1 and a --threads N run is the
/// parallel-discovery gate CI checks.
void WriteDiscoveryTranscript(const Schema& schema, const DiscoveryResult& result,
                              std::ostream& out) {
  char buf[96];
  size_t kept = 0;
  for (const MinedRuleInfo& r : result.mined) kept += r.kept ? 1 : 0;
  out << "== discover candidates=" << result.mined.size() << " kept=" << kept
      << " mds=" << result.mds.size() << " sample=" << result.sample_rows << "\n";
  out << "-- candidates\n";
  for (const MinedRuleInfo& r : result.mined) {
    std::snprintf(buf, sizeof(buf), " sup=%.4f conf=%.4f mln=%.4f", r.support,
                  r.confidence, r.mln_score);
    out << (r.kept ? "keep " : "drop ") << r.text << buf << "\n";
  }
  out << "-- matching dependencies\n";
  for (const MatchingDependency& md : result.mds) {
    std::snprintf(buf, sizeof(buf), " pairs=%zu match=%zu conf=%.4f",
                  md.similar_pairs, md.matching_pairs, md.confidence);
    out << md.ToString(schema) << buf << "\n";
  }
  // A `tail` past this marker is a rules file ParseRules accepts verbatim.
  out << "-- rules\n";
  for (const Constraint& rule : result.rules.rules()) {
    out << rule.CanonicalText(schema) << "\n";
  }
}

int RunDiscover(const Args& args) {
  if (args.out_path.empty()) return Usage();

  // Build the dirty table, keeping ground truth and the hand-written
  // rules around when --eval will score repairs against them.
  struct DiscoverInput {
    Dataset dirty;
    RuleSet hand_rules;        // empty for --data
    GroundTruth truth{Dataset(Schema()), {}};  // empty for --data
  };
  auto input = [&]() -> Result<DiscoverInput> {
    if (!args.data_path.empty()) {
      MLN_ASSIGN_OR_RETURN(Dataset data, Dataset::FromCsvFile(args.data_path));
      return DiscoverInput{std::move(data), RuleSet(Schema())};
    }
    HospitalConfig config;
    config.num_hospitals = args.hospitals;
    config.num_measures = args.measures;
    MLN_ASSIGN_OR_RETURN(Workload wl, MakeHospitalWorkload(config));
    ErrorSpec spec;
    spec.error_rate = args.error_rate;
    spec.seed = args.seed;
    MLN_ASSIGN_OR_RETURN(DirtyDataset dd, InjectErrors(wl.clean, wl.rules, spec));
    return DiscoverInput{std::move(dd.dirty), std::move(wl.rules),
                         std::move(dd.truth)};
  }();
  if (!input.ok()) {
    std::fprintf(stderr, "workload: %s\n", input.status().ToString().c_str());
    return 1;
  }
  const Dataset& dirty = input->dirty;

  DiscoveryOptions options;
  options.num_threads = args.threads;
  options.max_lhs = args.max_lhs;
  options.min_support = args.min_support;
  options.min_confidence = args.min_confidence;
  auto mined = DiscoverRules(dirty, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "discover: %s\n", mined.status().ToString().c_str());
    return 1;
  }

  std::ofstream out(args.out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", args.out_path.c_str());
    return 1;
  }
  WriteDiscoveryTranscript(dirty.schema(), *mined, out);

  double hand_f1 = 0.0;
  double mined_f1 = 0.0;
  if (args.eval) {
    // The acceptance demo: clean the dirty table with the mined rules
    // alone and compare against the hand-written baseline. The cleaning
    // runs use a fixed sequential configuration, so the transcript stays
    // independent of --threads.
    CleaningOptions copts;
    copts.agp_threshold = args.agp_threshold;
    CleaningEngine engine(copts);
    auto hand = engine.Clean(dirty, input->hand_rules);
    auto ours = engine.Clean(dirty, mined->rules);
    if (!hand.ok() || !ours.ok()) {
      const Status& bad = !hand.ok() ? hand.status() : ours.status();
      std::fprintf(stderr, "eval: %s\n", bad.ToString().c_str());
      return 1;
    }
    hand_f1 = EvaluateRepair(dirty, hand->cleaned, input->truth).F1();
    mined_f1 = EvaluateRepair(dirty, ours->cleaned, input->truth).F1();
    char buf[96];
    std::snprintf(buf, sizeof(buf), "-- eval hand_f1=%.4f mined_f1=%.4f\n",
                  hand_f1, mined_f1);
    out << buf;
  }

  out.close();
  if (out.fail()) {
    std::fprintf(stderr, "discover: write to %s failed\n", args.out_path.c_str());
    return 1;
  }
  std::printf("discovered %zu rules (%zu candidates, %zu MDs) -> %s\n",
              mined->rules.size(), mined->mined.size(), mined->mds.size(),
              args.out_path.c_str());
  if (args.eval && mined_f1 < 0.9 * hand_f1) {
    // The CI demo gate: mined rules must clean within 10% of the
    // hand-written baseline.
    std::fprintf(stderr, "eval: mined F1 %.4f below 90%% of hand-written %.4f\n",
                 mined_f1, hand_f1);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  if (!args.failpoint.empty()) {
    // Cross-process crash-sim hook: arm the named site to fire once, then
    // run the command normally. CI's fault job uses this to prove e.g.
    // that `save --failpoint snapshot/before-rename` fails without
    // touching a pre-existing snapshot at --out.
    Status armed = ConfigureFailpoint(args.failpoint, FailpointSpec::Once());
    if (!armed.ok()) {
      std::fprintf(stderr, "--failpoint %s: %s\n", args.failpoint.c_str(),
                   armed.ToString().c_str());
      return 1;
    }
  }
  if (args.command == "save") return RunSave(args);
  if (args.command == "inspect") return RunInspect(args);
  if (args.command == "serve") return RunServe(args);
  if (args.command == "discover") return RunDiscover(args);
  return Usage();
}
