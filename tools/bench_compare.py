#!/usr/bin/env python3
"""Diffs a fresh micro_kernels run against the committed baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]

Fails (exit 1) when any BM_* benchmark's real_time regressed by more than
the threshold relative to the committed baseline, or when a baseline
benchmark disappeared from the fresh run (silently dropping coverage must
be an explicit baseline update, not an accident). New benchmarks that have
no baseline entry are reported but never fail the run — committing a
refreshed BENCH_micro.json is how they join the gate.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative real_time regression")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    for name in sorted(base.keys() | fresh.keys()):
        if name not in fresh:
            failures.append(f"{name}: present in baseline but missing from the fresh run")
            continue
        new_time, unit = fresh[name]
        if name not in base:
            print(f"NEW   {name}: {new_time:.0f} {unit} (no baseline; not gated)")
            continue
        old_time, old_unit = base[name]
        if unit != old_unit:
            failures.append(f"{name}: time unit changed {old_unit} -> {unit}")
            continue
        ratio = new_time / old_time if old_time > 0 else float("inf")
        status = "OK   "
        if ratio > 1.0 + args.threshold:
            status = "FAIL "
            failures.append(
                f"{name}: {old_time:.0f} -> {new_time:.0f} {unit} "
                f"({(ratio - 1.0) * 100:+.1f}%, threshold +{args.threshold * 100:.0f}%)")
        print(f"{status}{name}: {old_time:.0f} -> {new_time:.0f} {unit} "
              f"({(ratio - 1.0) * 100:+.1f}%)")

    if failures:
        print("\nPerf gate failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("(If the regression is intentional, refresh BENCH_micro.json "
              "at the repo root in the same PR.)", file=sys.stderr)
        return 1
    print("\nPerf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
