#!/usr/bin/env python3
"""Diffs a fresh micro_kernels run against the committed baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
                        [--fail-on-removed]

The regression gate runs on the *intersection* of the two runs: a BM_*
present in both files fails the job when its real_time regressed by more
than the threshold. Benchmarks present on only one side are reported
explicitly — ADDED (fresh only; they join the gate once a refreshed
BENCH_micro.json is committed) and REMOVED (baseline only; pass
--fail-on-removed to make dropped coverage fail the job instead of just
being reported). Malformed benchmark entries are a clean diagnostic, not a
KeyError.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}")
    out = {}
    for i, b in enumerate(data.get("benchmarks", [])):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None:
            raise SystemExit(
                f"bench_compare: {path}: benchmark entry {i} has no 'name'")
        if "real_time" not in b:
            raise SystemExit(
                f"bench_compare: {path}: benchmark '{name}' has no 'real_time'")
        try:
            real_time = float(b["real_time"])
        except (TypeError, ValueError):
            raise SystemExit(
                f"bench_compare: {path}: benchmark '{name}' has a non-numeric "
                f"real_time: {b['real_time']!r}")
        out[name] = (real_time, b.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative real_time regression")
    parser.add_argument("--fail-on-removed", action="store_true",
                        help="fail when a baseline benchmark is missing from "
                             "the fresh run (default: report only)")
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    added = sorted(fresh.keys() - base.keys())
    removed = sorted(base.keys() - fresh.keys())
    common = sorted(base.keys() & fresh.keys())

    failures = []
    for name in added:
        new_time, unit = fresh[name]
        print(f"ADDED   {name}: {new_time:.0f} {unit} (no baseline; not gated)")
    for name in removed:
        old_time, unit = base[name]
        print(f"REMOVED {name}: was {old_time:.0f} {unit} in the baseline, "
              f"missing from the fresh run")
        if args.fail_on_removed:
            failures.append(f"{name}: present in baseline but missing from the "
                            f"fresh run")
    for name in common:
        new_time, unit = fresh[name]
        old_time, old_unit = base[name]
        if unit != old_unit:
            failures.append(f"{name}: time unit changed {old_unit} -> {unit}")
            print(f"FAIL    {name}: time unit changed {old_unit} -> {unit}")
            continue
        ratio = new_time / old_time if old_time > 0 else float("inf")
        status = "OK     "
        if ratio > 1.0 + args.threshold:
            status = "FAIL   "
            failures.append(
                f"{name}: {old_time:.0f} -> {new_time:.0f} {unit} "
                f"({(ratio - 1.0) * 100:+.1f}%, threshold +{args.threshold * 100:.0f}%)")
        print(f"{status}{name}: {old_time:.0f} -> {new_time:.0f} {unit} "
              f"({(ratio - 1.0) * 100:+.1f}%)")

    if not common:
        print("bench_compare: no benchmarks in common between baseline and "
              "fresh run", file=sys.stderr)
        return 1
    if failures:
        print("\nPerf gate failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("(If the regression is intentional, refresh BENCH_micro.json "
              "at the repo root in the same PR.)", file=sys.stderr)
        return 1
    print("\nPerf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
