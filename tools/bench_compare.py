#!/usr/bin/env python3
"""Diffs a fresh micro_kernels run against the committed baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [--threshold 0.25]
                        [--fail-on-removed] [--require-release]

The regression gate runs on the *intersection* of the two runs: a BM_*
present in both files fails the job when its real_time regressed by more
than the threshold. Benchmarks present on only one side are reported
explicitly — ADDED (fresh only; they join the gate once a refreshed
BENCH_micro.json is committed) and REMOVED (baseline only; pass
--fail-on-removed to make dropped coverage fail the job instead of just
being reported). Malformed benchmark entries are a clean diagnostic, not a
KeyError.
"""

import argparse
import json
import sys


def check_release(path, data):
    """Rejects timings measured from a debug build.

    The binary stamps its own build type into the context as
    `mlnclean_build_type` (Debian's libbenchmark is compiled without
    NDEBUG, so the library's own `library_build_type` says "debug" even
    for a -O2/NDEBUG binary). Prefer the binary's stamp; fall back to the
    library field only for JSONs predating the custom key.
    """
    context = data.get("context", {})
    build_type = context.get("mlnclean_build_type")
    if build_type is not None:
        if build_type != "release":
            raise SystemExit(
                f"bench_compare: {path}: measured from a debug build "
                f"(mlnclean_build_type={build_type!r}); re-run from a "
                f"Release configure")
        return
    if context.get("library_build_type") == "debug":
        raise SystemExit(
            f"bench_compare: {path}: no mlnclean_build_type in context and "
            f"library_build_type is 'debug'; re-record from a Release build "
            f"of micro_kernels")


def load(path, require_release=False):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_compare: cannot read {path}: {e}")
    if require_release:
        check_release(path, data)
    out = {}
    for i, b in enumerate(data.get("benchmarks", [])):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None:
            raise SystemExit(
                f"bench_compare: {path}: benchmark entry {i} has no 'name'")
        if "real_time" not in b:
            raise SystemExit(
                f"bench_compare: {path}: benchmark '{name}' has no 'real_time'")
        try:
            real_time = float(b["real_time"])
        except (TypeError, ValueError):
            raise SystemExit(
                f"bench_compare: {path}: benchmark '{name}' has a non-numeric "
                f"real_time: {b['real_time']!r}")
        out[name] = (real_time, b.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative real_time regression")
    parser.add_argument("--fail-on-removed", action="store_true",
                        help="fail when a baseline benchmark is missing from "
                             "the fresh run (default: report only)")
    parser.add_argument("--require-release", action="store_true",
                        help="fail when either JSON was measured from a debug "
                             "build (mlnclean_build_type context key, with "
                             "library_build_type as a fallback)")
    args = parser.parse_args()

    base = load(args.baseline, require_release=args.require_release)
    fresh = load(args.fresh, require_release=args.require_release)

    added = sorted(fresh.keys() - base.keys())
    removed = sorted(base.keys() - fresh.keys())
    common = sorted(base.keys() & fresh.keys())

    if not common:
        # An empty intersection means the gate would vacuously pass (or the
        # loop below would print nothing useful) — every regression would
        # slip through as "ADDED". Fail up front with the counts so a
        # renamed/retargeted suite is diagnosed as such.
        print(f"bench_compare: no benchmark names in common — baseline "
              f"{args.baseline} has {len(base)}, fresh run {args.fresh} has "
              f"{len(fresh)}, intersection is empty.", file=sys.stderr)
        print("Either the wrong files were compared or the suite was "
              "renamed wholesale; re-record the baseline from a Release "
              "build (see BENCH_micro.json at the repo root) and commit it "
              "in the same PR.", file=sys.stderr)
        return 1

    failures = []
    for name in added:
        new_time, unit = fresh[name]
        print(f"ADDED   {name}: {new_time:.0f} {unit} (no baseline; not gated)")
    for name in removed:
        old_time, unit = base[name]
        print(f"REMOVED {name}: was {old_time:.0f} {unit} in the baseline, "
              f"missing from the fresh run")
        if args.fail_on_removed:
            failures.append(f"{name}: present in baseline but missing from the "
                            f"fresh run")
    for name in common:
        new_time, unit = fresh[name]
        old_time, old_unit = base[name]
        if unit != old_unit:
            failures.append(f"{name}: time unit changed {old_unit} -> {unit}")
            print(f"FAIL    {name}: time unit changed {old_unit} -> {unit}")
            continue
        ratio = new_time / old_time if old_time > 0 else float("inf")
        status = "OK     "
        if ratio > 1.0 + args.threshold:
            status = "FAIL   "
            failures.append(
                f"{name}: {old_time:.0f} -> {new_time:.0f} {unit} "
                f"({(ratio - 1.0) * 100:+.1f}%, threshold +{args.threshold * 100:.0f}%)")
        print(f"{status}{name}: {old_time:.0f} -> {new_time:.0f} {unit} "
              f"({(ratio - 1.0) * 100:+.1f}%)")

    if failures:
        print("\nPerf gate failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("(If the regression is intentional, refresh BENCH_micro.json "
              "at the repo root in the same PR.)", file=sys.stderr)
        return 1
    print("\nPerf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
