// Ablation (not in the paper): how much each design choice DESIGN.md
// calls out contributes — AGP (τ = 0 disables it), Markov weight learning
// (Eq. 4 priors only), the FSCR minimality discount, and duplicate
// removal, each toggled off from the tuned configuration.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

namespace {

double RunWith(const Workload& wl, const DirtyDataset& dd,
               const CleaningOptions& options) {
  CleanModel model = *CleaningEngine(options).Compile(wl.clean.schema(), wl.rules);
  auto result = *model.Clean(dd.dirty);
  return EvaluateRepair(dd.dirty, result.cleaned, dd.truth).F1();
}

}  // namespace

int main() {
  Header("Ablation: per-component contribution (F1, 5% errors, Rret 50%)");
  std::printf("%8s  %8s  %8s  %10s  %14s\n", "dataset", "full", "no-AGP",
              "no-learn", "no-minimality");
  for (Workload wl : {Car(), Hai()}) {
    DirtyDataset dd = Corrupt(wl);

    CleaningOptions full = Options(wl);

    CleaningOptions no_agp = full;
    no_agp.agp_threshold = 0;

    CleaningOptions no_learn = full;
    no_learn.learn_weights = false;

    CleaningOptions no_min = full;
    no_min.fscr_minimality_discount = 1.0;

    std::printf("%8s  %8.3f  %8.3f  %8.3f  %14.3f\n", wl.name.c_str(),
                RunWith(wl, dd, full), RunWith(wl, dd, no_agp),
                RunWith(wl, dd, no_learn), RunWith(wl, dd, no_min));
  }
  return 0;
}
