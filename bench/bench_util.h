// Shared helpers for the experiment harnesses. Each bench binary
// regenerates one table or figure of the paper's evaluation (Section 7)
// and prints the same rows/series the paper reports.
//
// Scale: MLNCLEAN_BENCH_SCALE=small|full (default small) sizes the
// generated datasets so the whole bench suite finishes in minutes on a
// laptop while preserving the curves' shapes.

#ifndef MLNCLEAN_BENCH_BENCH_UTIL_H_
#define MLNCLEAN_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mlnclean/mlnclean.h"

namespace mlnclean {
namespace bench {

inline bool FullScale() {
  const char* scale = std::getenv("MLNCLEAN_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "full";
}

/// CAR-like workload (sparse; Table 4 CAR rules). τ* = 2 on this scale.
inline Workload Car() {
  CarConfig config;
  config.num_rows = FullScale() ? 12000 : 3000;
  return *MakeCarWorkload(config);
}

/// HAI-like workload (dense; Table 4 HAI rules). τ* = 3 on this scale.
inline Workload Hai() {
  HospitalConfig config;
  config.num_hospitals = FullScale() ? 120 : 40;
  config.num_measures = 10;
  return *MakeHospitalWorkload(config);
}

/// TPC-H-like workload (Table 4 TPC-H rule), for the distributed runs.
inline Workload Tpch() {
  TpchConfig config;
  config.num_customers = FullScale() ? 800 : 300;
  config.num_rows = FullScale() ? 60000 : 12000;
  return *MakeTpchWorkload(config);
}

/// Larger HAI-like workload for the distributed runs (partitioning only
/// makes sense when every part still holds whole reason-key groups).
inline Workload HaiLarge() {
  HospitalConfig config;
  config.num_hospitals = FullScale() ? 400 : 150;
  config.num_measures = 10;
  return *MakeHospitalWorkload(config);
}

/// The paper's per-dataset optimal AGP threshold at this scale.
inline size_t BestTau(const Workload& wl) { return wl.name == "CAR" ? 2 : 3; }

/// Corrupts a workload with the paper's default spec (5% errors, half
/// typos / half replacement errors) unless overridden.
inline DirtyDataset Corrupt(const Workload& wl, double error_rate = 0.05,
                            double rret = 0.5, uint64_t seed = 42) {
  ErrorSpec spec;
  spec.error_rate = error_rate;
  spec.replacement_ratio = rret;
  spec.seed = seed;
  return *InjectErrors(wl.clean, wl.rules, spec);
}

/// Default cleaning options for a workload.
inline CleaningOptions Options(const Workload& wl) {
  CleaningOptions options;
  options.agp_threshold = BestTau(wl);
  return options;
}

inline void Header(const char* title) {
  std::printf("\n== %s ==\n", title);
}

}  // namespace bench
}  // namespace mlnclean

#endif  // MLNCLEAN_BENCH_BENCH_UTIL_H_
