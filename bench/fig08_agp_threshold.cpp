// Figure 8: AGP accuracy (Precision-A, Recall-A) and the number of
// detected abnormal γs (#dag) as the threshold τ varies.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 8: AGP vs threshold on " + wl.name).c_str());
    DirtyDataset dd = Corrupt(wl);
    std::printf("%6s  %12s  %12s  %8s\n", "tau", "Precision-A", "Recall-A", "#dag");
    const size_t max_tau = wl.name == "CAR" ? 5 : 10;
    for (size_t tau = 0; tau <= max_tau; tau += (wl.name == "CAR" ? 1 : 2)) {
      CleaningOptions options = Options(wl);
      options.agp_threshold = tau;
      auto eval = *EvaluateComponents(dd.dirty, wl.rules, options, dd.truth);
      std::printf("%6zu  %12.3f  %12.3f  %8zu\n", tau, eval.agp.Precision(),
                  eval.agp.Recall(), eval.dag);
    }
  }
  return 0;
}
