// Micro-benchmarks (google-benchmark) of the kernels the experiments
// spend their time in: string distances, grounding, index construction,
// weight learning, the stage-I cleaners, fusion, and partitioning.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "cleaning/agp.h"
#include "cleaning/rsc.h"

using namespace mlnclean;
using namespace mlnclean::bench;

namespace {

const Workload& SharedHai() {
  static const Workload wl = [] {
    HospitalConfig config;
    config.num_hospitals = 40;
    config.num_measures = 10;
    return *MakeHospitalWorkload(config);
  }();
  return wl;
}

const DirtyDataset& SharedDirty() {
  static const DirtyDataset dd = Corrupt(SharedHai());
  return dd;
}

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "3341000325", b = "3341000052";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_CosineBigram(benchmark::State& state) {
  std::string a = "MRSA BACTEREMIA", b = "MRSA BACTEREMA";
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineBigramDistance(a, b));
  }
}
BENCHMARK(BM_CosineBigram);

void BM_GroundConstraint(benchmark::State& state) {
  const Workload& wl = SharedHai();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroundConstraint(wl.clean, wl.rules.rule(0)));
  }
}
BENCHMARK(BM_GroundConstraint);

void BM_IndexBuild(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MlnIndex::Build(dd.dirty, wl.rules));
  }
}
BENCHMARK(BM_IndexBuild);

void BM_WeightLearning(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  MlnIndex index = *MlnIndex::Build(dd.dirty, wl.rules);
  for (auto _ : state) {
    index.LearnWeights();
  }
}
BENCHMARK(BM_WeightLearning);

void BM_StageOne(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  MlnCleanPipeline cleaner(Options(wl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cleaner.RunStageOne(dd.dirty, wl.rules, nullptr));
  }
}
BENCHMARK(BM_StageOne);

void BM_FullPipeline(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  MlnCleanPipeline cleaner(Options(wl));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cleaner.Clean(dd.dirty, wl.rules));
  }
}
BENCHMARK(BM_FullPipeline);

void BM_Partition(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  PartitionOptions opts;
  opts.num_parts = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionDataset(dd.dirty, opts));
  }
}
BENCHMARK(BM_Partition);

void BM_GibbsSmallNetwork(benchmark::State& state) {
  GroundNetwork net;
  for (int i = 0; i < 20; ++i) {
    AtomId a = net.AddAtom("x" + std::to_string(i));
    (void)net.AddClause({{{a, true}}, 0.5 + 0.1 * i, false});
  }
  GibbsOptions opts;
  opts.burn_in_sweeps = 10;
  opts.sample_sweeps = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GibbsMarginals(net, opts));
  }
}
BENCHMARK(BM_GibbsSmallNetwork);

}  // namespace

BENCHMARK_MAIN();
