// Micro-benchmarks (google-benchmark) of the kernels the experiments
// spend their time in: string distances, grounding, index construction,
// weight learning, the stage-I cleaners, fusion, and partitioning.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cleaning/agp.h"
#include "cleaning/rsc.h"

using namespace mlnclean;
using namespace mlnclean::bench;

namespace {

const Workload& SharedHai() {
  static const Workload wl = [] {
    HospitalConfig config;
    config.num_hospitals = 40;
    config.num_measures = 10;
    return *MakeHospitalWorkload(config);
  }();
  return wl;
}

const DirtyDataset& SharedDirty() {
  static const DirtyDataset dd = Corrupt(SharedHai());
  return dd;
}

void BM_Levenshtein(benchmark::State& state) {
  std::string a = "3341000325", b = "3341000052";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_LevenshteinScratch(benchmark::State& state) {
  std::string a = "3341000325", b = "3341000052";
  EditDistanceScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b, &scratch));
  }
}
BENCHMARK(BM_LevenshteinScratch);

void BM_DamerauScratch(benchmark::State& state) {
  std::string a = "3341000325", b = "3341000052";
  EditDistanceScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DamerauLevenshtein(a, b, &scratch));
  }
}
BENCHMARK(BM_DamerauScratch);

// Long-value distance: 128-char strings with scattered edits. This is
// where the bit-parallel kernel earns its keep — the classic DP is
// O(n*m) cell updates while Myers does 64 columns per word op.
void BM_LevenshteinLong(benchmark::State& state) {
  std::string a, b;
  for (int i = 0; i < 128; ++i) {
    a.push_back(static_cast<char>('a' + (i * 7) % 26));
    b.push_back(static_cast<char>('a' + (i * 7 + (i % 17 == 0 ? 3 : 0)) % 26));
  }
  EditDistanceScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Levenshtein(a, b, &scratch));
  }
}
BENCHMARK(BM_LevenshteinLong);

void BM_CosineBigram(benchmark::State& state) {
  std::string a = "MRSA BACTEREMIA", b = "MRSA BACTEREMA";
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineBigramDistance(a, b));
  }
}
BENCHMARK(BM_CosineBigram);

void BM_CosineProfilePrebuilt(benchmark::State& state) {
  // Profile construction amortized away: the steady-state cost of
  // comparing two distinct values that AGP/RSC see over and over.
  BigramProfile a("MRSA BACTEREMIA"), b("MRSA BACTEREMA");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineProfileDistance(a, b));
  }
}
BENCHMARK(BM_CosineProfilePrebuilt);

// Stage-I cleaners on the 40-hospital workload. Arg 0/1 = distance cache
// off/on; threads are pinned to 1 so the cache effect is isolated (block
// parallelism shows up in BM_StageOne/threads below).
CleaningOptions StageOneOptions(bool cached, size_t threads) {
  CleaningOptions options = Options(SharedHai());
  options.cache_distances = cached;
  options.num_threads = threads;
  return options;
}

void BM_AgpAll(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  CleaningOptions options = StageOneOptions(state.range(0) != 0, 1);
  DistanceFn dist = MakeNormalizedDistanceFn(options.distance);
  MlnIndex base = *MlnIndex::Build(dd.dirty, wl.rules);
  for (auto _ : state) {
    state.PauseTiming();
    MlnIndex index = base;  // AGP mutates the index; rebuild from the copy
    state.ResumeTiming();
    RunAgpAll(&index, options, dist, nullptr);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_AgpAll)->Arg(0)->Arg(1);

void BM_RscAll(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  CleaningOptions options = StageOneOptions(state.range(0) != 0, 1);
  DistanceFn dist = MakeNormalizedDistanceFn(options.distance);
  MlnIndex base = *MlnIndex::Build(dd.dirty, wl.rules);
  RunAgpAll(&base, options, dist, nullptr);
  base.LearnWeights();
  for (auto _ : state) {
    state.PauseTiming();
    MlnIndex index = base;
    state.ResumeTiming();
    RunRscAll(&index, options, dist, nullptr);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_RscAll)->Arg(0)->Arg(1);

void BM_GroundConstraint(benchmark::State& state) {
  const Workload& wl = SharedHai();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroundConstraint(wl.clean, wl.rules.rule(0)));
  }
}
BENCHMARK(BM_GroundConstraint);

// Grounding every rule of the workload over the dirty data: the per-tuple
// half of index construction (ROADMAP's ~430 µs grounding hot spot). The
// id-tuple rewrite is on trial here — bindings dedup on dictionary ids
// with no per-tuple key strings.
void BM_Grounding(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  for (auto _ : state) {
    for (size_t ri = 0; ri < wl.rules.size(); ++ri) {
      benchmark::DoNotOptimize(GroundConstraint(dd.dirty, wl.rules.rule(ri)));
    }
  }
}
BENCHMARK(BM_Grounding);

void BM_IndexBuild(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MlnIndex::Build(dd.dirty, wl.rules));
  }
}
BENCHMARK(BM_IndexBuild);

// Row-incremental append (the index half of CleanSession::AppendRows): a
// base index over all-but-50 rows, copied — the session copies base to
// owned on every Resume, so the copy is part of the honest per-batch cost
// — then extended with the last 50 rows. Compare against BM_IndexBuild,
// the cold re-index a non-incremental session pays per batch; the delta
// is the streaming win docs/perf.md records.
void BM_IncrementalAppend(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  const size_t base_rows = dd.dirty.num_rows() - 50;
  Dataset prefix = dd.dirty.Slice(0, base_rows);
  MlnIndex base = *MlnIndex::Build(prefix, wl.rules);
  for (auto _ : state) {
    MlnIndex index = base;
    benchmark::DoNotOptimize(index.AppendRows(dd.dirty, wl.rules, base_rows));
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IncrementalAppend);

void BM_WeightLearning(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  MlnIndex index = *MlnIndex::Build(dd.dirty, wl.rules);
  for (auto _ : state) {
    index.LearnWeights();
  }
}
BENCHMARK(BM_WeightLearning);

// The opt-in vectorized-exp softmax (WeightLearnerOptions::fast_exp);
// compare against BM_WeightLearning for the delta.
void BM_WeightLearningFastExp(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  MlnIndex index = *MlnIndex::Build(dd.dirty, wl.rules);
  WeightLearnerOptions options;
  options.fast_exp = true;
  for (auto _ : state) {
    index.LearnWeights(options);
  }
}
BENCHMARK(BM_WeightLearningFastExp);

// Full rule discovery (lattice + MD mining + MLN scoring) on the shared
// 40-hospital dirty table — the `mlnclean_model discover` hot path.
void BM_DiscoverRules(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscoverRules(dd.dirty));
  }
}
BENCHMARK(BM_DiscoverRules);

// Arg = worker threads (default cache setting): the end-to-end stage-I
// trajectory tracked against the sequential seed. Compile rides inside
// the loop (the cost profile of the old one-shot facade this benchmark
// has always measured).
void BM_StageOne(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  CleaningOptions options = Options(wl);
  options.num_threads = static_cast<size_t>(state.range(0));
  CleaningEngine engine(options);
  for (auto _ : state) {
    CleanModel model = *engine.Compile(wl.clean.schema(), wl.rules);
    SessionOptions sopts;
    sopts.collect_report = false;
    CleanSession session = model.NewSession(dd.dirty, std::move(sopts));
    benchmark::DoNotOptimize(session.RunUntil(Stage::kRsc));
  }
}
BENCHMARK(BM_StageOne)->Arg(1)->Arg(8);

void BM_FullPipeline(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  CleaningOptions options = Options(wl);
  options.num_threads = static_cast<size_t>(state.range(0));
  CleaningEngine engine(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Clean(dd.dirty, wl.rules));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(8);

// Serving amortization (the CleaningEngine contract): K micro-batches
// cleaned against one prepared model — compiled once, Eq. 6 weight store
// warmed on the first batch, per-batch sessions reusing the stored
// weights instead of running Newton — vs K cold one-shot
// CleaningEngine::Clean runs. Everything else (trace collection, thread
// count) is identical, so the delta is the amortized compile+learn cost.
// Arg 0 = cold, Arg 1 = prepared model.
const std::vector<Dataset>& ServeBatches() {
  static const std::vector<Dataset> batches = [] {
    const Dataset& dirty = SharedDirty().dirty;
    const size_t k = 8;
    const size_t chunk = (dirty.num_rows() + k - 1) / k;
    std::vector<Dataset> out;
    for (size_t begin = 0; begin < dirty.num_rows(); begin += chunk) {
      out.push_back(dirty.Slice(begin, begin + chunk));
    }
    return out;
  }();
  return batches;
}

void BM_ServeBatch(benchmark::State& state) {
  const Workload& wl = SharedHai();
  const std::vector<Dataset>& batches = ServeBatches();
  CleaningOptions options = Options(wl);
  if (state.range(0) != 0) {
    CleanModel model =
        *CleaningEngine(options).Compile(wl.clean.schema(), wl.rules);
    if (!model.Warm(batches.front()).ok()) {
      state.SkipWithError("warmup failed");
      return;
    }
    SessionOptions serve;
    serve.reuse_model_weights = true;
    for (auto _ : state) {
      for (const Dataset& batch : batches) {
        benchmark::DoNotOptimize(model.Clean(batch, serve));
      }
    }
  } else {
    CleaningEngine cleaner(options);
    for (auto _ : state) {
      for (const Dataset& batch : batches) {
        benchmark::DoNotOptimize(cleaner.Clean(batch, wl.rules));
      }
    }
  }
}
BENCHMARK(BM_ServeBatch)->Arg(0)->Arg(1);

// Concurrent serving: the 8 micro-batches submitted asynchronously to a
// CleanServer scheduling sessions on the shared process executor, then
// harvested in submit order — the multi-session throughput the serving
// layer exists for (vs BM_ServeBatch's one-session-at-a-time loop).
void BM_ServerThroughput(benchmark::State& state) {
  const Workload& wl = SharedHai();
  const std::vector<Dataset>& batches = ServeBatches();
  CleaningOptions options = Options(wl);
  CleanModel model = *CleaningEngine(options).Compile(wl.clean.schema(), wl.rules);
  ServerOptions sopts;
  sopts.executor = ProcessExecutor();
  sopts.max_concurrent_sessions = 4;
  sopts.queue_capacity = 2 * batches.size();
  CleanServer server = *CleanServer::Create(model, sopts);
  for (auto _ : state) {
    std::vector<CleanTicket> tickets;
    tickets.reserve(batches.size());
    for (const Dataset& batch : batches) {
      tickets.push_back(*server.Submit(batch));
    }
    for (CleanTicket& ticket : tickets) {
      benchmark::DoNotOptimize(ticket.Take());
    }
  }
}
BENCHMARK(BM_ServerThroughput);

// Fleet saturation: N client threads each firing the 8 micro-batches at a
// CleanFleet of M shards and harvesting their own tickets, on one shared
// pool. Args are {clients, shards}. Beyond wall time, the run reports the
// fleet's submit-to-harvest latency percentiles (p50_ms / p99_ms counters
// from FleetStats) — the tail the EDF/coalescing queue work targets.
void BM_FleetSaturation(benchmark::State& state) {
  const size_t clients = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  const Workload& wl = SharedHai();
  const DirtyDataset& dd = SharedDirty();
  const std::vector<Dataset>& batches = ServeBatches();
  CleaningOptions options = Options(wl);
  CleanModel model = *CleaningEngine(options).Compile(wl.clean.schema(), wl.rules);
  ShardRouterOptions ropts;
  ropts.num_shards = shards;
  ShardRouter router = *ShardRouter::Build(dd.dirty, ropts);
  FleetOptions fopts;
  fopts.executor = ProcessExecutor();
  fopts.max_concurrent_sessions = 4;
  fopts.queue_capacity = 2 * clients * batches.size();
  CleanFleet fleet = *CleanFleet::Create(model, std::move(router), fopts);
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&fleet, &batches] {
        std::vector<FleetTicket> tickets;
        tickets.reserve(batches.size());
        for (const Dataset& batch : batches) {
          tickets.push_back(*fleet.Submit(batch));
        }
        for (FleetTicket& ticket : tickets) {
          benchmark::DoNotOptimize(ticket.Take());
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  const FleetStats stats = fleet.Stats();
  state.counters["p50_ms"] = stats.latency.p50 * 1e3;
  state.counters["p99_ms"] = stats.latency.p99 * 1e3;
}
BENCHMARK(BM_FleetSaturation)->Args({4, 2})->Args({8, 3})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Partition(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  PartitionOptions opts;
  opts.num_parts = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionDataset(dd.dirty, opts));
  }
}
BENCHMARK(BM_Partition);

void BM_GibbsSmallNetwork(benchmark::State& state) {
  GroundNetwork net;
  for (int i = 0; i < 20; ++i) {
    AtomId a = net.AddAtom("x" + std::to_string(i));
    (void)net.AddClause({{{a, true}}, 0.5 + 0.1 * i, false});
  }
  GibbsOptions opts;
  opts.burn_in_sweeps = 10;
  opts.sample_sweeps = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GibbsMarginals(net, opts));
  }
}
BENCHMARK(BM_GibbsSmallNetwork);

// A connected network (implication ring + biases) where the sweeps run
// through the flat CSR adjacency and the chromatic partition — the shape
// the incremental satisfied-count bookkeeping is built for, unlike the
// all-unit-clause network above.
void BM_GibbsSweep(benchmark::State& state) {
  GroundNetwork net;
  constexpr int kAtoms = 64;
  std::vector<AtomId> atoms;
  for (int i = 0; i < kAtoms; ++i) {
    atoms.push_back(net.AddAtom("x" + std::to_string(i)));
  }
  for (int i = 0; i < kAtoms; ++i) {
    (void)net.AddClause(
        {{{atoms[i], false}, {atoms[(i + 1) % kAtoms], true}}, 0.8, false});
    (void)net.AddClause({{{atoms[i], true}}, 0.1 * (i % 5), false});
  }
  GibbsOptions opts;
  opts.burn_in_sweeps = 20;
  opts.sample_sweeps = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GibbsMarginals(net, opts));
  }
}
BENCHMARK(BM_GibbsSweep);

// Snapshot save + load of the warmed 40-hospital model: the v4 columnar
// varint codec on its motivating payload (the Eq. 6 weight store).
void BM_SnapshotCodec(benchmark::State& state) {
  const DirtyDataset& dd = SharedDirty();
  const Workload& wl = SharedHai();
  CleaningOptions options = Options(wl);
  CleaningEngine engine(options);
  CleanModel model = *engine.Compile(wl.clean.schema(), wl.rules);
  if (!model.Warm(dd.dirty).ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  size_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    if (!model.Save(out).ok()) {
      state.SkipWithError("save failed");
      return;
    }
    std::string blob = out.str();
    bytes = blob.size();
    std::istringstream in(blob);
    benchmark::DoNotOptimize(engine.Load(in));
  }
  state.counters["snapshot_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_SnapshotCodec);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Debian's libbenchmark package is compiled without NDEBUG, so the
  // library self-reports `library_build_type: "debug"` regardless of how
  // THIS binary was built. Record the binary's own build type under a
  // separate key so tools/bench_compare.py --require-release can reject
  // accidentally debug-measured baselines without false-failing on the
  // packaged library.
#ifdef NDEBUG
  benchmark::AddCustomContext("mlnclean_build_type", "release");
#else
  benchmark::AddCustomContext("mlnclean_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
