// Figure 14: FSCR accuracy (Precision-F, Recall-F) as the error
// percentage grows — conflict resolution stays accurate because detected
// conflicts carry strong multi-rule evidence.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  const double kRates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 14: FSCR vs error percentage on " + wl.name).c_str());
    std::printf("%6s  %12s  %12s\n", "err%", "Precision-F", "Recall-F");
    for (double rate : kRates) {
      DirtyDataset dd = Corrupt(wl, rate);
      auto eval = *EvaluateComponents(dd.dirty, wl.rules, Options(wl), dd.truth);
      std::printf("%6.0f  %12.3f  %12.3f\n", rate * 100, eval.fscr.Precision(),
                  eval.fscr.Recall());
    }
  }
  return 0;
}
