// Figure 11: overall MLNClean F1 and runtime as the AGP threshold τ
// varies; the accuracy peaks at the dataset-specific optimum and the
// runtime grows with the number of detected abnormal groups.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 11: MLNClean vs threshold on " + wl.name).c_str());
    DirtyDataset dd = Corrupt(wl);
    std::printf("%6s  %12s  %14s\n", "tau", "F1", "runtime_s");
    const size_t max_tau = wl.name == "CAR" ? 5 : 10;
    for (size_t tau = 0; tau <= max_tau; tau += (wl.name == "CAR" ? 1 : 2)) {
      CleaningOptions options = Options(wl);
      options.agp_threshold = tau;
      CleanModel model =
          *CleaningEngine(options).Compile(wl.clean.schema(), wl.rules);
      auto result = *model.Clean(dd.dirty);
      std::printf("%6zu  %12.3f  %14.3f\n", tau,
                  EvaluateRepair(dd.dirty, result.cleaned, dd.truth).F1(),
                  result.report.timings.total);
    }
  }
  return 0;
}
