// Figure 7: effect of the error type ratio Rret (fraction of replacement
// errors among the 5% total errors; the rest are typos) on F1 for CAR (a)
// and HAI (b).

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  const double kRatios[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 7: error type ratio sweep on " + wl.name).c_str());
    std::printf("%6s  %12s  %12s\n", "Rret%", "MLNClean_F1", "HoloClean_F1");
    CleanModel model =
        *CleaningEngine(Options(wl)).Compile(wl.clean.schema(), wl.rules);
    for (double rret : kRatios) {
      DirtyDataset dd = Corrupt(wl, 0.05, rret);
      auto mln = *model.Clean(dd.dirty);
      HoloCleanBaseline baseline;
      auto hc = *baseline.CleanWithOracle(dd.dirty, wl.rules, dd.truth);
      std::printf("%6.0f  %12.3f  %12.3f\n", rret * 100,
                  EvaluateRepair(dd.dirty, mln.cleaned, dd.truth).F1(),
                  EvaluateRepair(dd.dirty, hc.cleaned, dd.truth).F1());
    }
  }
  return 0;
}
