// Figure 9: RSC accuracy (Precision-R, Recall-R) as the AGP threshold τ
// varies — the propagated impact of abnormal-group processing on the
// reliability-score cleaning step.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 9: RSC vs threshold on " + wl.name).c_str());
    DirtyDataset dd = Corrupt(wl);
    std::printf("%6s  %12s  %12s\n", "tau", "Precision-R", "Recall-R");
    const size_t max_tau = wl.name == "CAR" ? 5 : 10;
    for (size_t tau = 0; tau <= max_tau; tau += (wl.name == "CAR" ? 1 : 2)) {
      CleaningOptions options = Options(wl);
      options.agp_threshold = tau;
      auto eval = *EvaluateComponents(dd.dirty, wl.rules, options, dd.truth);
      std::printf("%6zu  %12.3f  %12.3f\n", tau, eval.rsc.Precision(),
                  eval.rsc.Recall());
    }
  }
  return 0;
}
