// Figure 6: effect of the error percentage on the MLNClean-vs-HoloClean
// comparison — F1 (a: CAR, b: HAI) and runtime (c: CAR, d: HAI) for error
// rates from 5% to 30% at the default 50/50 typo/replacement mix. The
// baseline runs with oracle (100%-accurate) detection, as in the paper.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  const double kRates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 6: error percentage sweep on " + wl.name).c_str());
    std::printf("%6s  %12s  %12s  %14s  %14s\n", "err%", "MLNClean_F1",
                "HoloClean_F1", "MLNClean_s", "HoloClean_s");
    // One compiled model serves the whole sweep (fresh weights per run:
    // each rate is an independent corruption of the same table).
    CleanModel model =
        *CleaningEngine(Options(wl)).Compile(wl.clean.schema(), wl.rules);
    for (double rate : kRates) {
      DirtyDataset dd = Corrupt(wl, rate);
      auto mln = *model.Clean(dd.dirty);
      RepairMetrics mm = EvaluateRepair(dd.dirty, mln.cleaned, dd.truth);

      HoloCleanBaseline baseline;
      auto hc = *baseline.CleanWithOracle(dd.dirty, wl.rules, dd.truth);
      RepairMetrics hm = EvaluateRepair(dd.dirty, hc.cleaned, dd.truth);

      std::printf("%6.0f  %12.3f  %12.3f  %14.3f  %14.3f\n", rate * 100,
                  mm.F1(), hm.F1(), mln.report.timings.total, hc.total_seconds);
    }
  }
  return 0;
}
