// Table 6: total time of distributed MLNClean as the number of workers
// grows from 2 to 10 (paper: ~6.7x speedup on TPC-H). On this 2-core host
// the wall clock saturates quickly, so the table also reports the
// deterministic LPT makespan of the measured per-part costs — the
// host-independent scaling shape (DESIGN.md substitution).

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  Workload wl = Tpch();
  DirtyDataset dd = Corrupt(wl);
  Header("Table 6: distributed MLNClean under different numbers of workers");

  // One run with 20 parts; per-part costs feed the makespan model.
  DistributedOptions opts;
  opts.cleaning = Options(wl);
  opts.cleaning.agp_threshold = 1;  // per-part support is ~1/20 of global
  opts.num_parts = 20;
  opts.num_workers = 2;
  DistributedMlnClean cleaner(opts);
  auto result = *cleaner.Clean(dd.dirty, wl.rules);
  double f1 = EvaluateRepair(dd.dirty, result.cleaned, dd.truth).F1();

  std::printf("%8s  %14s  %10s\n", "workers", "makespan_s", "speedup");
  double base = result.SimulatedMakespan(2);
  for (size_t workers = 2; workers <= 10; workers += 2) {
    double m = result.SimulatedMakespan(workers);
    std::printf("%8zu  %14.3f  %9.2fx\n", workers, m, base / m);
  }
  std::printf("(wall-clock on this host with 2 workers: %.3f s; F1 = %.3f)\n",
              result.wall_seconds, f1);
  return 0;
}
