// Figure 15: distributed MLNClean on the larger HAI-like and TPC-H-like
// datasets — F1 and runtime as the error percentage grows. The Spark
// cluster of the paper is replaced by the thread-pool worker set (see
// DESIGN.md); accuracy behaviour is what the figure tracks.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  const double kRates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (Workload wl : {HaiLarge(), Tpch()}) {
    Header(("Figure 15: distributed MLNClean on " + wl.name).c_str());
    std::printf("%6s  %12s  %12s  %16s\n", "err%", "F1", "wall_s",
                "makespan10_s");
    for (double rate : kRates) {
      DirtyDataset dd = Corrupt(wl, rate);
      DistributedOptions opts;
      opts.cleaning = Options(wl);
      // A part sees only ~1/k of every group's support, so the per-part
      // AGP threshold scales down accordingly (see EXPERIMENTS.md).
      opts.cleaning.agp_threshold = wl.name == "TPC-H" ? 1 : 0;
      opts.num_parts = 6;
      opts.num_workers = 2;  // host cores; scaling shape via makespan model
      DistributedMlnClean cleaner(opts);
      auto result = *cleaner.Clean(dd.dirty, wl.rules);
      std::printf("%6.0f  %12.3f  %12.3f  %16.3f\n", rate * 100,
                  EvaluateRepair(dd.dirty, result.cleaned, dd.truth).F1(),
                  result.wall_seconds, result.SimulatedMakespan(10));
    }
  }
  return 0;
}
