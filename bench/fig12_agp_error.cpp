// Figure 12: AGP accuracy (Precision-A, Recall-A, #dag) as the error
// percentage grows — more errors fragment more groups and the fixed τ
// flags more normal groups as abnormal.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  const double kRates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 12: AGP vs error percentage on " + wl.name).c_str());
    std::printf("%6s  %12s  %12s  %8s\n", "err%", "Precision-A", "Recall-A",
                "#dag");
    for (double rate : kRates) {
      DirtyDataset dd = Corrupt(wl, rate);
      auto eval = *EvaluateComponents(dd.dirty, wl.rules, Options(wl), dd.truth);
      std::printf("%6.0f  %12.3f  %12.3f  %8zu\n", rate * 100,
                  eval.agp.Precision(), eval.agp.Recall(), eval.dag);
    }
  }
  return 0;
}
