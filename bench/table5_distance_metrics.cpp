// Table 5: F1-scores of MLNClean under different distance metrics. The
// paper contrasts Levenshtein with cosine distance; the
// Damerau-Levenshtein extension is included as an ablation.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  Header("Table 5: F1-scores under different distance metrics");
  std::printf("%8s  %14s  %10s  %10s\n", "dataset", "levenshtein", "cosine",
              "damerau");
  for (Workload wl : {Car(), Hai()}) {
    DirtyDataset dd = Corrupt(wl);
    double f1[3];
    int i = 0;
    for (DistanceMetric metric : {DistanceMetric::kLevenshtein,
                                  DistanceMetric::kCosine,
                                  DistanceMetric::kDamerau}) {
      CleaningOptions options = Options(wl);
      options.distance = metric;
      CleanModel model =
          *CleaningEngine(options).Compile(wl.clean.schema(), wl.rules);
      auto result = *model.Clean(dd.dirty);
      f1[i++] = EvaluateRepair(dd.dirty, result.cleaned, dd.truth).F1();
    }
    std::printf("%8s  %14.3f  %10.3f  %10.3f\n", wl.name.c_str(), f1[0], f1[1],
                f1[2]);
  }
  return 0;
}
