// Figure 13: RSC accuracy (Precision-R, Recall-R) as the error percentage
// grows — learned weights get less reliable with more corrupted support.

#include "bench_util.h"

using namespace mlnclean;
using namespace mlnclean::bench;

int main() {
  const double kRates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  for (Workload wl : {Car(), Hai()}) {
    Header(("Figure 13: RSC vs error percentage on " + wl.name).c_str());
    std::printf("%6s  %12s  %12s\n", "err%", "Precision-R", "Recall-R");
    for (double rate : kRates) {
      DirtyDataset dd = Corrupt(wl, rate);
      auto eval = *EvaluateComponents(dd.dirty, wl.rules, Options(wl), dd.truth);
      std::printf("%6.0f  %12.3f  %12.3f\n", rate * 100, eval.rsc.Precision(),
                  eval.rsc.Recall());
    }
  }
  return 0;
}
